//! # The scenario engine: spec → engine → report
//!
//! Every simulation in this workspace — figure harnesses, the `abcsim` and
//! `figgen` binaries, the examples, the benches — is described by a
//! declarative [`ScenarioSpec`] and executed by the [`ScenarioEngine`].
//! Nothing outside this module (and `netsim`'s own tests) wires a
//! [`Simulator`] by hand.
//!
//! The pipeline has three stages:
//!
//! 1. **Spec.** A [`ScenarioSpec`] is plain data: a [`Topology`] (which
//!    links/hops exist), a [`Scheme`] (endpoint controller + bottleneck
//!    qdisc), a [`FlowSchedule`] (who sends, when, with what application
//!    pattern), an optional [`QdiscSpec`] AQM override, the path RTT,
//!    buffer size, duration/warmup, and a `seed` that fixes every random
//!    choice (Poisson short-flow arrivals today; anything stochastic
//!    tomorrow). Specs are `Clone + Send + Sync`, so they can be generated,
//!    stored, and farmed out freely.
//! 2. **Engine.** [`ScenarioEngine::build`] turns a spec into a
//!    [`BuiltScenario`]: it constructs the `Simulator`, reserves and
//!    installs every node (senders, sinks, link queues, Wi-Fi APs), splits
//!    the propagation RTT across the hops, attaches the metrics hub, and
//!    applies qdisc overrides and the PK-ABC oracle. [`ScenarioEngine::run`]
//!    does build + run-to-end + [`BuiltScenario::finish`] in one call, and
//!    [`ScenarioEngine::run_batch`] executes **independent scenarios in
//!    parallel** on a scoped worker pool (see below).
//! 3. **Report.** [`BuiltScenario::finish`] folds the metrics hub into the
//!    [`Report`] the paper's tables use: utilization against delivery
//!    opportunities, per-packet delay and queuing-delay percentiles, Jain
//!    fairness, and the plotting series. Scenarios that need more than a
//!    `Report` (mid-run window samples, estimator internals) use
//!    [`ScenarioEngine::build`] and the typed accessors
//!    ([`BuiltScenario::sender`], [`BuiltScenario::link_queue`],
//!    [`BuiltScenario::wifi_ap_mut`]) between [`BuiltScenario::run_chunk`]
//!    calls.
//!
//! ## Adding a new scheme or scenario in ≤ 10 lines
//!
//! A new *scenario* is just a new spec value — no wiring:
//!
//! ```
//! use experiments::engine::{ScenarioEngine, ScenarioSpec};
//! use experiments::{LinkSpec, Scheme};
//! use netsim::rate::Rate;
//!
//! let spec = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
//!     .flows(4)
//!     .duration_secs(2)
//!     .warmup_secs(1);
//! let report = ScenarioEngine::new().run(&spec);
//! assert!(report.utilization > 0.5);
//! ```
//!
//! A new *scheme* is one variant in [`Scheme`] plus arms in
//! `Scheme::{name, make_cc, make_qdisc}`; every harness in the workspace
//! (figures, bins, examples, sweeps) picks it up with no further changes,
//! because they all go through this engine.
//!
//! ## Parallelism
//!
//! `run_batch` distributes specs over `min(threads, specs)` scoped OS
//! threads pulling from a shared work queue. Each worker builds and runs
//! its scenarios entirely on its own thread (the simulator itself stays
//! single-threaded and deterministic), so N cores regenerate an
//! N×-scenario sweep in roughly the time of its slowest cell. The pool is
//! implemented with `std::thread::scope` because this workspace builds
//! offline with zero external crates; the work-queue shape is exactly
//! rayon's `par_iter().map().collect()`, so swapping rayon in (where
//! crates.io is reachable) is a three-line change in `parallel_map`.
//!
//! Determinism is per-spec, not per-batch: a scenario's result depends
//! only on its spec (including `seed`), never on which thread ran it or
//! on its neighbors — `tests/engine_determinism.rs` pins this down.

use crate::report::AppReport;
use crate::report::{downsample, Report};
use crate::scenario::LinkSpec;
use crate::scheme::Scheme;
use crate::wifi::McsSpec;
use abc_core::coexist::{DualQueue, DualQueueConfig, WeightPolicy};
use abc_core::router::AbcQdisc;
// Re-exported so downstream crates can build `QdiscSpec::AbcWith` /
// `HopQdisc::Abc` literals without depending on abc-core directly.
pub use abc_core::router::AbcRouterConfig;
use netsim::fault::{Direction, ImpairmentSpec, ImpairmentWire};
use netsim::flow::{Sender, Sink, TrafficSource};
use netsim::linkqueue::LinkQueue;
use netsim::metrics::{new_hub, AppFlowMeta, LinkRecord, Metrics};
use netsim::packet::{FlowId, NodeId, Route, MTU_BYTES};
use netsim::queue::{DropTail, Qdisc};
use netsim::rate::Rate;
use netsim::sim::{RunGuards, Simulator};
use netsim::telemetry::{
    new_hub as new_telemetry_hub, ProfileReport, Shared, TelemetryConfig, TelemetryHub,
};
use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wifi_mac::{WifiAp, WifiApConfig};
use workload::{AbrClient, RtcSource, WorkloadSpec};

/// The links a scenario's packets traverse. Each variant fixes the hop
/// chain and its metrics tags; flows enter at any hop (see
/// [`FlowSpec::entry_hop`]).
#[derive(Debug, Clone)]
pub enum Topology {
    /// One bottleneck (tag `"bottleneck"`): the single-link cellular /
    /// wired scenarios behind most figures.
    SingleBottleneck(LinkSpec),
    /// Two bottlenecks in series (tags `"uplink"`, `"downlink"`), both
    /// running the scheme's qdisc — Fig. 8c's cellular up+down path.
    TwoHop {
        /// The uplink bottleneck.
        up: LinkSpec,
        /// The downlink bottleneck.
        down: LinkSpec,
    },
    /// An ABC-style wireless hop (tag `"wireless"`, scheme qdisc) followed
    /// by a fixed-rate wired droptail hop (tag `"wired"`) — Figs. 6/11.
    MixedPath {
        /// The ABC-controlled wireless hop.
        wireless: LinkSpec,
        /// The wired droptail hop's fixed rate.
        wired: Rate,
    },
    /// The 802.11n A-MPDU access point (tag `"wifi"`) with a time-varying
    /// MCS index — Figs. 4/5/10/14.
    Wifi {
        /// How the MCS index varies over time.
        mcs: McsSpec,
        /// The AP's (bufferbloat-sized) queue.
        ap_buffer_pkts: usize,
    },
    /// N bottlenecks in series (tags `"hop1"…"hopN"`, N ≤ 8), each with
    /// its own qdisc capability — the incremental-deployment parking lot
    /// (§4.1), where only some hops are ABC routers and cross traffic
    /// enters/leaves at interior hops ([`FlowSpec::entry_hop`] /
    /// [`FlowSpec::exit_hop`]).
    ParkingLot {
        /// The hop chain, in path order.
        hops: Vec<ParkingHop>,
    },
    /// A data-direction bottleneck (tag `"down"`, scheme qdisc) with an
    /// independent return-direction bottleneck (tag `"up"`, droptail —
    /// ACK echoes must pass unmodified) and independent one-way
    /// propagation delays, overriding the spec's symmetric RTT split.
    Asymmetric {
        /// The data-direction bottleneck.
        down: LinkSpec,
        /// The ACK/return-direction bottleneck.
        up: LinkSpec,
        /// One-way propagation delay, data direction.
        down_delay: SimDuration,
        /// One-way propagation delay, return direction.
        up_delay: SimDuration,
    },
}

/// One parking-lot hop: its link and which qdisc capability it deploys.
#[derive(Debug, Clone)]
pub struct ParkingHop {
    /// The hop's link.
    pub link: LinkSpec,
    /// The hop's qdisc capability.
    pub qdisc: HopQdisc,
}

impl ParkingHop {
    /// A hop running the scheme's default qdisc on `link`.
    pub fn new(link: LinkSpec) -> Self {
        ParkingHop {
            link,
            qdisc: HopQdisc::SchemeDefault,
        }
    }

    /// Set the hop's qdisc capability.
    pub fn qdisc(mut self, q: HopQdisc) -> Self {
        self.qdisc = q;
        self
    }
}

/// Per-hop qdisc capability inside a [`Topology::ParkingLot`]: an
/// ABC-capable hop runs the ABC router, a legacy hop runs droptail or
/// CoDel and never touches the accel/brake marks.
#[derive(Debug, Clone)]
pub enum HopQdisc {
    /// The scheme's own qdisc (ABC router under ABC schemes).
    SchemeDefault,
    /// A legacy droptail hop.
    DropTail,
    /// A legacy CoDel hop (drop mode; no ABC marks).
    Codel,
    /// An ABC router with an explicit config.
    Abc(AbcRouterConfig),
}

/// Metrics tags for parking-lot hops (the `&'static str` tag table the
/// metrics hub keys on); also the topology's hop-count ceiling.
const PARKING_TAGS: [&str; 8] = [
    "hop1", "hop2", "hop3", "hop4", "hop5", "hop6", "hop7", "hop8",
];

impl Topology {
    /// Metrics tags of the hop chain, in path order.
    pub fn hop_tags(&self) -> &'static [&'static str] {
        match self {
            Topology::SingleBottleneck(_) => &["bottleneck"],
            Topology::TwoHop { .. } => &["uplink", "downlink"],
            Topology::MixedPath { .. } => &["wireless", "wired"],
            Topology::Wifi { .. } => &["wifi"],
            Topology::ParkingLot { hops } => {
                assert!(
                    (1..=PARKING_TAGS.len()).contains(&hops.len()),
                    "a parking lot has 1..={} hops, got {}",
                    PARKING_TAGS.len(),
                    hops.len()
                );
                &PARKING_TAGS[..hops.len()]
            }
            Topology::Asymmetric { .. } => &["down", "up"],
        }
    }

    /// How many leading hops of [`Topology::hop_tags`] lie on the *data*
    /// (forward) path. Every topology's tags are all forward hops except
    /// [`Topology::Asymmetric`], whose `"up"` hop sits on the ACK path.
    pub fn forward_hop_count(&self) -> usize {
        match self {
            Topology::Asymmetric { .. } => 1,
            other => other.hop_tags().len(),
        }
    }

    /// The hop whose queue the headline `qdelay_ms` metric reports: the
    /// final cellular hop, the wireless hop of a mixed path, the AP.
    pub fn primary_tag(&self) -> &'static str {
        match self {
            Topology::SingleBottleneck(_) => "bottleneck",
            Topology::TwoHop { .. } => "downlink",
            Topology::MixedPath { .. } => "wireless",
            Topology::Wifi { .. } => "wifi",
            // the last hop, where end-to-end queuing shows up
            Topology::ParkingLot { hops } => PARKING_TAGS[hops.len() - 1],
            Topology::Asymmetric { .. } => "down",
        }
    }

    /// The link spec whose capacity curve belongs on the report's plot.
    fn capacity_link(&self) -> Option<&LinkSpec> {
        match self {
            Topology::SingleBottleneck(l) => Some(l),
            Topology::MixedPath { wireless, .. } => Some(wireless),
            Topology::Asymmetric { down, .. } => Some(down),
            _ => None,
        }
    }
}

/// Overrides the bottleneck qdisc the scheme would normally install.
/// `SchemeDefault` keeps [`Scheme::make_qdisc`]'s choice.
#[derive(Debug, Clone)]
pub enum QdiscSpec {
    /// Keep [`Scheme::make_qdisc`]'s choice.
    SchemeDefault,
    /// Plain droptail regardless of scheme.
    DropTail,
    /// An ABC router with an explicit config (the δ-sweep of the
    /// stability figure; dt variants beyond `Scheme::AbcDt`).
    AbcWith(AbcRouterConfig),
    /// The §5.2 dual-queue coexistence router.
    DualQueue(WeightPolicy),
}

/// One flow: who sends, from when to when, with what application pattern,
/// entering the hop chain where.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Shown in per-flow outputs (`BuiltScenario::flows`).
    pub label: String,
    /// `None` inherits the spec's scheme.
    pub scheme: Option<Scheme>,
    /// When the flow starts sending.
    pub start: SimTime,
    /// When the flow stops, if it does.
    pub stop: Option<SimTime>,
    /// The application pattern driving the flow.
    pub app: TrafficSource,
    /// Index into [`Topology::hop_tags`]: 0 traverses the whole path;
    /// `k > 0` joins at hop `k` (cross traffic on the wired hop).
    pub entry_hop: usize,
    /// Last forward hop this flow traverses before reaching its sink
    /// (inclusive index into [`Topology::hop_tags`]). `None` rides to the
    /// path's end; `Some(k)` exits after hop `k` — parking-lot cross
    /// traffic leaving at an interior hop.
    pub exit_hop: Option<usize>,
}

impl FlowSpec {
    /// A backlogged whole-path flow of the spec's scheme, starting at 0.
    pub fn new(label: impl Into<String>) -> Self {
        FlowSpec {
            label: label.into(),
            scheme: None,
            start: SimTime::ZERO,
            stop: None,
            app: TrafficSource::Backlogged,
            entry_hop: 0,
            exit_hop: None,
        }
    }

    /// Run this scheme instead of the spec's.
    pub fn scheme(mut self, s: Scheme) -> Self {
        self.scheme = Some(s);
        self
    }

    /// Start sending at `t`.
    pub fn start_at(mut self, t: SimTime) -> Self {
        self.start = t;
        self
    }

    /// Stop sending at `t`.
    pub fn stop_at(mut self, t: SimTime) -> Self {
        self.stop = Some(t);
        self
    }

    /// Drive the flow with this application pattern.
    pub fn app(mut self, app: TrafficSource) -> Self {
        self.app = app;
        self
    }

    /// Join the path at hop `hop` (see [`FlowSpec::entry_hop`]).
    pub fn entry_hop(mut self, hop: usize) -> Self {
        self.entry_hop = hop;
        self
    }

    /// Leave the path after hop `hop` (see [`FlowSpec::exit_hop`]).
    pub fn exit_hop(mut self, hop: usize) -> Self {
        self.exit_hop = Some(hop);
        self
    }
}

/// One application-layer workload riding a scenario: the model itself
/// (from the `workload` crate) plus where it attaches — which scheme its
/// transport runs, when it starts, and which hop it enters. A scenario
/// mixes any number of these with its bulk [`FlowSchedule`].
#[derive(Debug, Clone)]
pub struct WorkloadEntry {
    /// Shown in per-flow outputs; web requests get ` <n>` suffixes.
    pub label: String,
    /// The application model itself.
    pub workload: WorkloadSpec,
    /// `None` inherits the spec's scheme.
    pub scheme: Option<Scheme>,
    /// When the workload starts.
    pub start: SimTime,
    /// Index into [`Topology::hop_tags`], like [`FlowSpec::entry_hop`].
    pub entry_hop: usize,
}

impl WorkloadEntry {
    /// A whole-path entry of the spec's scheme starting at 0, labeled
    /// with the workload kind.
    pub fn new(workload: WorkloadSpec) -> Self {
        WorkloadEntry {
            label: workload.kind().to_string(),
            workload,
            scheme: None,
            start: SimTime::ZERO,
            entry_hop: 0,
        }
    }

    /// Label the workload's flows.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Run the workload's transport on this scheme instead of the
    /// spec's.
    pub fn scheme(mut self, s: Scheme) -> Self {
        self.scheme = Some(s);
        self
    }

    /// Start the workload at `t`.
    pub fn start_at(mut self, t: SimTime) -> Self {
        self.start = t;
        self
    }

    /// Join the path at hop `hop` (see [`FlowSpec::entry_hop`]).
    pub fn entry_hop(mut self, hop: usize) -> Self {
        self.entry_hop = hop;
        self
    }
}

/// Poisson arrivals of short finite flows at a target offered load
/// (Fig. 12's churn). Expanded into concrete [`FlowSpec`]s at build time
/// from the spec's `seed`.
#[derive(Debug, Clone)]
pub struct PoissonShortFlows {
    /// Offered load as a fraction of the bottleneck's nominal rate.
    pub load: f64,
    /// Size of each short flow.
    pub bytes: u64,
    /// The scheme short flows run.
    pub scheme: Scheme,
}

/// Who sends, and when.
#[derive(Debug, Clone)]
pub enum FlowSchedule {
    /// `n` identical flows of the spec's scheme. Flow `i` starts at
    /// `i × stagger`; with `stagger_departures`, flow `i` also stops at
    /// `duration − (n−1−i) × stagger` (Fig. 3's joins and leaves).
    Uniform {
        /// Number of flows.
        n: u32,
        /// The application pattern every flow runs.
        app: TrafficSource,
        /// Gap between consecutive flow starts.
        stagger: SimDuration,
        /// Also stop flows one by one (see the variant docs).
        stagger_departures: bool,
    },
    /// Arbitrary per-flow specs (coexistence mixes, cross traffic,
    /// application-limited fleets).
    Explicit(Vec<FlowSpec>),
}

impl FlowSchedule {
    /// `n` backlogged flows, all starting at 0.
    pub fn backlogged(n: u32) -> Self {
        FlowSchedule::Uniform {
            n,
            app: TrafficSource::Backlogged,
            stagger: SimDuration::ZERO,
            stagger_departures: false,
        }
    }
}

/// The declarative description of one simulation run. See the
/// [module docs](self) for the full pipeline.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The congestion-control scheme (endpoint + bottleneck qdisc).
    pub scheme: Scheme,
    /// Which links/hops the path comprises.
    pub topology: Topology,
    /// Who sends, and when.
    pub flows: FlowSchedule,
    /// Poisson short-flow churn on top of `flows`.
    pub short_flows: Option<PoissonShortFlows>,
    /// Application-layer workloads (web/RTC/ABR video) mixed into the
    /// scenario; their app-level metrics surface as [`Report::app`].
    ///
    /// [`Report::app`]: crate::report::Report::app
    pub workloads: Vec<WorkloadEntry>,
    /// AQM override for the scheme-controlled hops.
    pub qdisc: QdiscSpec,
    /// Path round-trip propagation delay, split evenly across hops.
    pub rtt: SimDuration,
    /// Bottleneck buffer (packets).
    pub buffer_pkts: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Measurements before this offset are discarded.
    pub warmup: SimDuration,
    /// Fixes every stochastic choice the engine makes.
    pub seed: u64,
    /// PK-ABC: let the first hop's control law see µ(t + lookahead).
    pub oracle_lookahead: Option<SimDuration>,
    /// Timer-wheel slot width override, as the exponent of a `2^shift` ns
    /// slot (`None` keeps netsim's default). A pure performance knob —
    /// every output is invariant to it — that lets µs-dense many-flow
    /// scenarios use wider slots with intra-slot batch pops.
    pub timer_slot_shift: Option<u32>,
    /// Telemetry sidecar recording: `Some(cfg)` installs a
    /// [`netsim::telemetry`] hub behind the simulator so probe sites
    /// sample per-flow/per-link dynamics at `cfg`'s cadence. `None` (the
    /// default) leaves the no-op sink in place — the run is byte-identical
    /// to a build without telemetry compiled in.
    pub telemetry: Option<TelemetryConfig>,
    /// Adversarial-network impairments spliced into the path (see
    /// [`netsim::fault`]). Empty (the default) reserves no nodes and
    /// leaves every output byte-identical to the pre-impairment engine.
    pub impairments: Vec<ImpairmentSpec>,
    /// Test-only injected fault, exercising the campaign runner's panic
    /// isolation and watchdog paths end-to-end. `None` in every real
    /// scenario.
    pub fault: Option<InjectedFault>,
}

/// A deliberate per-scenario failure mode, injectable from campaign
/// axes and TOML (`inject_fault = "panic" | "stall"`) so the runner's
/// fault-tolerance machinery can be tested through the real pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic while building the scenario.
    Panic,
    /// Livelock the event loop (a node re-arming a 1 ns timer forever),
    /// so only a watchdog budget can end the run.
    Stall,
}

impl InjectedFault {
    /// Stable wire name, used by the campaign TOML layer.
    pub fn name(self) -> &'static str {
        match self {
            InjectedFault::Panic => "panic",
            InjectedFault::Stall => "stall",
        }
    }

    /// Inverse of [`InjectedFault::name`].
    pub fn from_name(name: &str) -> Option<InjectedFault> {
        match name {
            "panic" => Some(InjectedFault::Panic),
            "stall" => Some(InjectedFault::Stall),
            _ => None,
        }
    }
}

/// The [`InjectedFault::Stall`] implementation: re-arms a 1 ns timer
/// forever, pinning the event loop at one simulated instant.
struct StallNode;

impl netsim::node::Node for StallNode {
    netsim::impl_node_downcast!();
    fn start(&mut self, ctx: &mut netsim::node::Context) {
        ctx.set_timer(SimDuration::from_nanos(1), 0);
    }
    fn handle(&mut self, ctx: &mut netsim::node::Context, _: netsim::event::EventKind) {
        ctx.set_timer(SimDuration::from_nanos(1), 0);
    }
}

impl ScenarioSpec {
    /// A single-bottleneck scenario with the defaults most figures share:
    /// 100 ms RTT, 250-packet buffer, one backlogged flow, 60 s run with
    /// 5 s warmup.
    pub fn single(scheme: Scheme, link: LinkSpec) -> Self {
        ScenarioSpec {
            scheme,
            topology: Topology::SingleBottleneck(link),
            flows: FlowSchedule::backlogged(1),
            short_flows: None,
            workloads: Vec::new(),
            qdisc: QdiscSpec::SchemeDefault,
            rtt: SimDuration::from_millis(100),
            buffer_pkts: 250,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(5),
            seed: 7,
            oracle_lookahead: None,
            timer_slot_shift: None,
            telemetry: None,
            impairments: Vec::new(),
            fault: None,
        }
    }

    /// Two scheme-controlled bottlenecks in series (Fig. 8c).
    pub fn two_hop(scheme: Scheme, up: LinkSpec, down: LinkSpec) -> Self {
        ScenarioSpec {
            topology: Topology::TwoHop { up, down },
            ..ScenarioSpec::single(scheme, LinkSpec::Constant(Rate::ZERO))
        }
    }

    /// ABC wireless + fixed-rate wired droptail (Figs. 6/11). Warmup is
    /// zero: these scenarios analyze the whole time series.
    pub fn mixed_path(wireless: LinkSpec, wired: Rate) -> Self {
        ScenarioSpec {
            topology: Topology::MixedPath { wireless, wired },
            warmup: SimDuration::ZERO,
            ..ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::ZERO))
        }
    }

    /// Flows through the 802.11n AP model (Figs. 4/5/10/14). Commodity
    /// Wi-Fi routers ship bufferbloat-sized queues (the paper observes
    /// multi-second tails on its NETGEAR testbed), hence the 2000-packet
    /// default AP buffer.
    pub fn wifi(scheme: Scheme, users: u32, mcs: McsSpec) -> Self {
        ScenarioSpec {
            topology: Topology::Wifi {
                mcs,
                ap_buffer_pkts: 2000,
            },
            flows: FlowSchedule::backlogged(users),
            duration: SimDuration::from_secs(45),
            ..ScenarioSpec::single(scheme, LinkSpec::Constant(Rate::ZERO))
        }
    }

    /// An N-hop parking lot (§4.1 incremental deployment). Shares the
    /// single-bottleneck defaults; per-hop qdisc capability and cross
    /// traffic come from the [`ParkingHop`]s and explicit flow specs.
    pub fn parking_lot(scheme: Scheme, hops: Vec<ParkingHop>) -> Self {
        ScenarioSpec {
            topology: Topology::ParkingLot { hops },
            ..ScenarioSpec::single(scheme, LinkSpec::Constant(Rate::ZERO))
        }
    }

    /// An asymmetric path: independent down/up bottlenecks and one-way
    /// delays. The spec's `rtt` is kept coherent (`down_delay +
    /// up_delay`) for anything that reads it, but route construction uses
    /// the explicit per-direction delays.
    pub fn asymmetric(
        scheme: Scheme,
        down: LinkSpec,
        up: LinkSpec,
        down_delay: SimDuration,
        up_delay: SimDuration,
    ) -> Self {
        ScenarioSpec {
            topology: Topology::Asymmetric {
                down,
                up,
                down_delay,
                up_delay,
            },
            rtt: down_delay + up_delay,
            ..ScenarioSpec::single(scheme, LinkSpec::Constant(Rate::ZERO))
        }
    }

    /// Replace the schedule with `n` backlogged flows.
    pub fn flows(mut self, n: u32) -> Self {
        self.flows = FlowSchedule::backlogged(n);
        self
    }

    /// Set every scheduled flow's application pattern.
    pub fn app(mut self, app: TrafficSource) -> Self {
        match &mut self.flows {
            FlowSchedule::Uniform { app: a, .. } => *a = app,
            FlowSchedule::Explicit(v) => {
                for f in v {
                    f.app = app;
                }
            }
        }
        self
    }

    /// Set the path round-trip propagation delay.
    pub fn rtt(mut self, rtt: SimDuration) -> Self {
        self.rtt = rtt;
        self
    }

    /// Set the bottleneck buffer.
    pub fn buffer_pkts(mut self, pkts: usize) -> Self {
        self.buffer_pkts = pkts;
        self
    }

    /// Set the simulated duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Set the simulated duration in whole seconds.
    pub fn duration_secs(self, s: u64) -> Self {
        self.duration(SimDuration::from_secs(s))
    }

    /// Set the measurement warmup.
    pub fn warmup(mut self, d: SimDuration) -> Self {
        self.warmup = d;
        self
    }

    /// Set the measurement warmup in whole seconds.
    pub fn warmup_secs(self, s: u64) -> Self {
        self.warmup(SimDuration::from_secs(s))
    }

    /// Fix the seed behind every stochastic choice.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the bottleneck qdisc.
    pub fn qdisc(mut self, q: QdiscSpec) -> Self {
        self.qdisc = q;
        self
    }

    /// Add an application-layer workload to the scenario.
    pub fn workload(mut self, entry: WorkloadEntry) -> Self {
        self.workloads.push(entry);
        self
    }

    /// Override the timer-wheel slot width (`2^shift` ns slots). Outputs
    /// are invariant to this; it only trades wheel precision for
    /// intra-slot batching under dense event storms.
    pub fn timer_slot_shift(mut self, shift: u32) -> Self {
        self.timer_slot_shift = Some(shift);
        self
    }

    /// Record a telemetry sidecar for this scenario (signals and sample
    /// cadence per `cfg`). Retrieve it with [`BuiltScenario::sidecar`] or
    /// [`ScenarioEngine::run_instrumented`].
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Splice one adversarial impairment into the path.
    pub fn impairment(mut self, imp: ImpairmentSpec) -> Self {
        self.impairments.push(imp);
        self
    }

    /// Replace the impairment list.
    pub fn impairments(mut self, imps: Vec<ImpairmentSpec>) -> Self {
        self.impairments = imps;
        self
    }

    /// Inject a deliberate fault (testing only — see [`InjectedFault`]).
    pub fn inject_fault(mut self, fault: InjectedFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Expand the schedule (+ Poisson churn) into concrete flows.
    fn expand_flows(&self) -> Vec<FlowSpec> {
        let mut out = match &self.flows {
            FlowSchedule::Uniform {
                n,
                app,
                stagger,
                stagger_departures,
            } => (0..*n)
                .map(|i| {
                    let mut f = FlowSpec::new(format!("flow {}", i + 1))
                        .start_at(SimTime::ZERO + *stagger * i as u64)
                        .app(*app);
                    if *stagger_departures && !stagger.is_zero() {
                        let lead = (*n - 1 - i) as u64;
                        f = f.stop_at(
                            (SimTime::ZERO + self.duration).saturating_sub(*stagger * lead),
                        );
                    }
                    f
                })
                .collect(),
            FlowSchedule::Explicit(v) => v.clone(),
        };
        if let Some(short) = &self.short_flows {
            let reference = self.nominal_rate();
            let mut rng = StdRng::seed_from_u64(self.seed);
            let arrivals_per_s = short.load * reference.bps() / 8.0 / short.bytes as f64;
            let mut t = 0.0;
            let mut i = 0u32;
            while t < self.duration.as_secs_f64() {
                let gap = -rng.gen_range(1e-9f64..1.0).ln() / arrivals_per_s;
                t += gap;
                if t >= self.duration.as_secs_f64() {
                    break;
                }
                i += 1;
                out.push(
                    FlowSpec::new(format!("short {i}"))
                        .scheme(short.scheme)
                        .start_at(SimTime::from_secs_f64(t))
                        .app(TrafficSource::Finite { bytes: short.bytes }),
                );
            }
        }
        out
    }

    /// The first hop's nominal rate — the reference for offered-load
    /// fractions.
    fn nominal_rate(&self) -> Rate {
        match &self.topology {
            Topology::SingleBottleneck(l) | Topology::TwoHop { up: l, .. } => l.nominal_rate(),
            Topology::MixedPath { wireless, .. } => wireless.nominal_rate(),
            // MCS 7, full batches ≈ 65 Mbit/s PHY; close enough for load
            // fractions, which only Fig. 12 (single-bottleneck) uses today.
            Topology::Wifi { .. } => Rate::from_mbps(65.0),
            Topology::ParkingLot { hops } => hops[0].link.nominal_rate(),
            Topology::Asymmetric { down, .. } => down.nominal_rate(),
        }
    }
}

/// Executes [`ScenarioSpec`]s: serially via [`run`](Self::run), in
/// parallel via [`run_batch`](Self::run_batch). See the [module
/// docs](self).
#[derive(Debug, Clone)]
pub struct ScenarioEngine {
    threads: usize,
}

impl Default for ScenarioEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioEngine {
    /// An engine sized to the `ABC_JOBS` environment variable if set (the
    /// `--jobs` flag of `abcsim`/`figgen`/`abc-campaign` routes through
    /// it), otherwise to the machine (one worker per available core).
    pub fn new() -> Self {
        let threads = jobs_from_env()
            .or_else(|| std::thread::available_parallelism().map(|n| n.get()).ok())
            .unwrap_or(4);
        ScenarioEngine { threads }
    }

    /// Cap the batch worker pool (1 = serial batches).
    pub fn with_threads(threads: usize) -> Self {
        ScenarioEngine {
            threads: threads.max(1),
        }
    }

    /// The worker-pool size batches run on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Construct the simulator for `spec` without running it. Use this
    /// (plus [`BuiltScenario::run_chunk`] and the typed accessors) when a
    /// harness needs to sample mid-run state; otherwise call
    /// [`run`](Self::run).
    pub fn build(&self, spec: &ScenarioSpec) -> BuiltScenario {
        let mut sim = match spec.timer_slot_shift {
            Some(shift) => Simulator::with_slot_shift(shift),
            None => Simulator::new(),
        };
        let hub = new_hub();
        hub.borrow_mut().set_epoch(SimTime::ZERO + spec.warmup);
        let telemetry = spec.telemetry.as_ref().map(|cfg| {
            let t = new_telemetry_hub(cfg.clone());
            sim.set_telemetry(Box::new(Shared(t.clone())));
            t
        });

        if spec.fault == Some(InjectedFault::Panic) {
            panic!("injected fault: panic");
        }

        let tags = spec.topology.hop_tags();
        let hop_ids: Vec<NodeId> = tags.iter().map(|_| sim.reserve_node()).collect();

        // Impairment wires: one shared node per spec entry, reserved
        // immediately after the hop queues and ONLY when configured — an
        // impairment-free spec allocates the exact same node ids (and so
        // the exact same bytes) as before this feature existed. Each wire
        // gets an independent RNG stream derived from the scenario seed
        // with a constant distinct from the workload-seeding one.
        let mut data_wires: Vec<Vec<NodeId>> = vec![Vec::new(); hop_ids.len()];
        let mut ack_wires: Vec<NodeId> = Vec::new();
        for (k, imp) in spec.impairments.iter().enumerate() {
            if let Err(e) = imp.validate() {
                panic!("invalid impairment {k}: {e}");
            }
            let id = sim.reserve_node();
            let wseed = spec.seed ^ (k as u64 + 1).wrapping_mul(0x517c_c1b7_2722_0a95);
            let slot = hub.borrow_mut().register_impairment(imp.label(k));
            sim.install_node(
                id,
                Box::new(
                    ImpairmentWire::from_kind(imp.kind, wseed).with_metrics(hub.clone(), slot),
                ),
            );
            match imp.direction {
                Direction::Data => {
                    assert!(
                        imp.hop < hop_ids.len(),
                        "impairment {k} targets hop {} of a {}-hop topology",
                        imp.hop,
                        hop_ids.len()
                    );
                    data_wires[imp.hop].push(id);
                }
                Direction::Ack => ack_wires.push(id),
            }
        }

        // Split the propagation RTT: equal legs along the forward path
        // (sender → hop₁ → … → hopₙ → sink), half the RTT straight back.
        // An asymmetric topology overrides both directions with its own
        // one-way delays and threads the ACK path through its up hop;
        // everything else keeps the symmetric split bit for bit.
        let fwd_count = spec.topology.forward_hop_count();
        let legs = (fwd_count + 1) as u64;
        let (leg, back_d, back_hop) = match &spec.topology {
            Topology::Asymmetric {
                down_delay,
                up_delay,
                ..
            } => (
                *down_delay / legs,
                *up_delay / 2,
                Some((hop_ids[1], *up_delay / 2)),
            ),
            _ => (spec.rtt / (2 * legs), spec.rtt / 2, None),
        };

        // One sender/sink pair per flow; routes reuse pooled hop buffers.
        // `wire` reserves sender-then-sink (node-id order is part of the
        // deterministic contract) and hands the forward route to a
        // caller-supplied sender builder.
        let wire = |sim: &mut Simulator,
                    flow: FlowId,
                    label: &str,
                    entry_hop: usize,
                    exit_hop: Option<usize>,
                    build: &mut dyn FnMut(Rc<Route>) -> Sender|
         -> NodeId {
            let sender_id = sim.reserve_node();
            let sink_id = sim.reserve_node();
            // `end` is one past the last forward hop this flow traverses.
            let end = exit_hop.map_or(fwd_count, |e| e + 1);
            assert!(
                entry_hop < fwd_count,
                "flow {:?} enters hop {} of a {}-forward-hop topology",
                label,
                entry_hop,
                fwd_count
            );
            assert!(
                entry_hop < end && end <= fwd_count,
                "flow {:?} exits after hop {} but enters at hop {} of {} forward hops",
                label,
                end - 1,
                entry_hop,
                fwd_count
            );
            // Splice data-direction wires ahead of their hop queue: the
            // wire takes over the leg's propagation delay and hands the
            // packet on with zero extra delay, so an impaired path keeps
            // the exact timing of the clean one.
            let fwd = if spec.impairments.is_empty() {
                Route::from_hops(
                    hop_ids[entry_hop..end]
                        .iter()
                        .map(|&id| (id, leg))
                        .chain([(sink_id, leg)]),
                )
            } else {
                let mut fwd_hops: Vec<(NodeId, SimDuration)> = Vec::new();
                for (h, &hid) in hop_ids.iter().enumerate().take(end).skip(entry_hop) {
                    let mut d = leg;
                    for &w in &data_wires[h] {
                        fwd_hops.push((w, d));
                        d = SimDuration::ZERO;
                    }
                    fwd_hops.push((hid, d));
                }
                fwd_hops.push((sink_id, leg));
                Route::from_hops(fwd_hops)
            };
            let back = {
                // sink → [ack wires] → [up hop, asymmetric only] → sender
                let mut chain: Vec<(NodeId, SimDuration)> = Vec::new();
                match back_hop {
                    Some((up_id, last_d)) => {
                        chain.push((up_id, back_d));
                        chain.push((sender_id, last_d));
                    }
                    None => chain.push((sender_id, back_d)),
                }
                if !ack_wires.is_empty() {
                    let first_d = chain[0].1;
                    chain[0].1 = SimDuration::ZERO;
                    let mut spliced: Vec<(NodeId, SimDuration)> = Vec::new();
                    let mut d = first_d;
                    for &w in &ack_wires {
                        spliced.push((w, d));
                        d = SimDuration::ZERO;
                    }
                    spliced.append(&mut chain);
                    chain = spliced;
                }
                Route::from_hops(chain)
            };
            sim.install_node(
                sink_id,
                Box::new(Sink::new(flow, back).with_metrics(hub.clone())),
            );
            sim.install_node(sender_id, Box::new(build(fwd)));
            sender_id
        };

        let flows = spec.expand_flows();
        let mut sender_ids = Vec::with_capacity(flows.len());
        let mut flow_ids = Vec::with_capacity(flows.len());
        for (i, f) in flows.iter().enumerate() {
            let flow = FlowId(i as u32 + 1);
            let scheme = f.scheme.unwrap_or(spec.scheme);
            let sender_id = wire(
                &mut sim,
                flow,
                &f.label,
                f.entry_hop,
                f.exit_hop,
                &mut |fwd| {
                    let mut sender =
                        Sender::new(flow, scheme.make_cc(), fwd, f.app).with_start_at(f.start);
                    if let Some(stop) = f.stop {
                        sender = sender.with_stop_at(stop);
                    }
                    sender
                },
            );
            sender_ids.push(sender_id);
            flow_ids.push((f.label.clone(), flow));
        }

        // Lower each workload entry onto the same transport substrate.
        let mut app_accounts: Vec<AppAccount> = Vec::new();
        let mut next_flow = flows.len() as u32 + 1;
        for (k, entry) in spec.workloads.iter().enumerate() {
            let scheme = entry.scheme.unwrap_or(spec.scheme);
            // Independent, reproducible stream per workload entry.
            let wseed = spec.seed ^ (k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            match &entry.workload {
                WorkloadSpec::Web(w) => {
                    for (j, req) in w.expand(wseed, spec.duration).iter().enumerate() {
                        let flow = FlowId(next_flow);
                        next_flow += 1;
                        let start = entry.start + req.start.since(SimTime::ZERO);
                        let label = format!("{} {}", entry.label, j + 1);
                        let bytes = req.bytes;
                        let sender_id =
                            wire(&mut sim, flow, &label, entry.entry_hop, None, &mut |fwd| {
                                Sender::new(
                                    flow,
                                    scheme.make_cc(),
                                    fwd,
                                    TrafficSource::Finite { bytes },
                                )
                                .with_start_at(start)
                            });
                        // The transport ships whole MTU packets, so the
                        // sink observes the request rounded up to packets.
                        let expected = bytes.div_ceil(MTU_BYTES as u64) * MTU_BYTES as u64;
                        hub.borrow_mut().register_app_flow(
                            flow,
                            AppFlowMeta {
                                start,
                                expected_bytes: Some(expected),
                                deadline: None,
                            },
                        );
                        sender_ids.push(sender_id);
                        flow_ids.push((label, flow));
                        app_accounts.push(AppAccount::Web {
                            flow,
                            start,
                            expected,
                        });
                    }
                }
                WorkloadSpec::Rtc(r) => {
                    let flow = FlowId(next_flow);
                    next_flow += 1;
                    let spec_r = *r;
                    let start = entry.start;
                    let sender_id = wire(
                        &mut sim,
                        flow,
                        &entry.label,
                        entry.entry_hop,
                        None,
                        &mut |fwd| {
                            Sender::new(flow, scheme.make_cc(), fwd, TrafficSource::Backlogged)
                                .with_start_at(start)
                                .with_pkt_size(spec_r.frame_bytes)
                                .with_app_driver(Box::new(RtcSource::new(spec_r, start)))
                        },
                    );
                    hub.borrow_mut().register_app_flow(
                        flow,
                        AppFlowMeta {
                            start,
                            expected_bytes: None,
                            deadline: Some(spec_r.deadline),
                        },
                    );
                    sender_ids.push(sender_id);
                    flow_ids.push((entry.label.clone(), flow));
                    app_accounts.push(AppAccount::Rtc { flow });
                }
                WorkloadSpec::AbrVideo(a) => {
                    let flow = FlowId(next_flow);
                    next_flow += 1;
                    let spec_a = a.clone();
                    let start = entry.start;
                    let sender_id = wire(
                        &mut sim,
                        flow,
                        &entry.label,
                        entry.entry_hop,
                        None,
                        &mut |fwd| {
                            Sender::new(flow, scheme.make_cc(), fwd, TrafficSource::Backlogged)
                                .with_start_at(start)
                                .with_app_driver(Box::new(AbrClient::new(spec_a.clone(), start)))
                        },
                    );
                    app_accounts.push(AppAccount::Video {
                        sender_idx: sender_ids.len(),
                    });
                    sender_ids.push(sender_id);
                    flow_ids.push((entry.label.clone(), flow));
                }
            }
        }

        // Install the hop chain.
        match &spec.topology {
            Topology::SingleBottleneck(link) => {
                let mut lq = LinkQueue::new(self.make_qdisc(spec, spec.buffer_pkts), link.build())
                    .with_metrics("bottleneck", hub.clone());
                if let Some(look) = spec.oracle_lookahead {
                    lq = lq.with_oracle_lookahead(look);
                }
                sim.install_node(hop_ids[0], Box::new(lq));
            }
            Topology::TwoHop { up, down } => {
                for (idx, (link, tag)) in [(up, "uplink"), (down, "downlink")].iter().enumerate() {
                    let mut lq =
                        LinkQueue::new(self.make_qdisc(spec, spec.buffer_pkts), link.build())
                            .with_metrics(tag, hub.clone());
                    if idx == 0 {
                        if let Some(look) = spec.oracle_lookahead {
                            lq = lq.with_oracle_lookahead(look);
                        }
                    }
                    sim.install_node(hop_ids[idx], Box::new(lq));
                }
            }
            Topology::MixedPath { wireless, wired } => {
                let mut lq =
                    LinkQueue::new(self.make_qdisc(spec, spec.buffer_pkts), wireless.build())
                        .with_metrics("wireless", hub.clone());
                if let Some(look) = spec.oracle_lookahead {
                    lq = lq.with_oracle_lookahead(look);
                }
                sim.install_node(hop_ids[0], Box::new(lq));
                // The wired hop is definitionally non-ABC: plain droptail.
                let wired_lq = LinkQueue::new(
                    Box::new(DropTail::new(spec.buffer_pkts)),
                    LinkSpec::Constant(*wired).build(),
                )
                .with_metrics("wired", hub.clone());
                sim.install_node(hop_ids[1], Box::new(wired_lq));
            }
            Topology::Wifi {
                mcs,
                ap_buffer_pkts,
            } => {
                let ap = WifiAp::new(
                    WifiApConfig::default(),
                    self.make_qdisc(spec, *ap_buffer_pkts),
                    mcs.build(),
                )
                .with_metrics("wifi", hub.clone());
                sim.install_node(hop_ids[0], Box::new(ap));
            }
            Topology::ParkingLot { hops } => {
                for (idx, hop) in hops.iter().enumerate() {
                    let qdisc: Box<dyn Qdisc> = match &hop.qdisc {
                        HopQdisc::SchemeDefault => self.make_qdisc(spec, spec.buffer_pkts),
                        HopQdisc::DropTail => Box::new(DropTail::new(spec.buffer_pkts)),
                        HopQdisc::Codel => Box::new(aqm::Codel::new(aqm::CodelConfig {
                            buffer_pkts: spec.buffer_pkts,
                            ..Default::default()
                        })),
                        HopQdisc::Abc(cfg) => Box::new(AbcQdisc::new(*cfg)),
                    };
                    let mut lq = LinkQueue::new(qdisc, hop.link.build())
                        .with_metrics(tags[idx], hub.clone());
                    if idx == 0 {
                        if let Some(look) = spec.oracle_lookahead {
                            lq = lq.with_oracle_lookahead(look);
                        }
                    }
                    sim.install_node(hop_ids[idx], Box::new(lq));
                }
            }
            Topology::Asymmetric { down, up, .. } => {
                let mut lq = LinkQueue::new(self.make_qdisc(spec, spec.buffer_pkts), down.build())
                    .with_metrics("down", hub.clone());
                if let Some(look) = spec.oracle_lookahead {
                    lq = lq.with_oracle_lookahead(look);
                }
                sim.install_node(hop_ids[0], Box::new(lq));
                // The return hop carries ACKs: droptail, never the scheme's
                // qdisc — an AQM rewriting ACK ECN would corrupt the echoes.
                let up_lq = LinkQueue::new(Box::new(DropTail::new(spec.buffer_pkts)), up.build())
                    .with_metrics("up", hub.clone());
                sim.install_node(hop_ids[1], Box::new(up_lq));
            }
        }

        if spec.fault == Some(InjectedFault::Stall) {
            sim.add_node(Box::new(StallNode));
        }

        BuiltScenario {
            sim,
            hub,
            telemetry,
            hops: tags.iter().copied().zip(hop_ids).collect(),
            sender_ids,
            flows: flow_ids,
            app_accounts,
            scheme_name: spec.scheme.name(),
            topology: spec.topology.clone(),
            duration: spec.duration,
            warmup: spec.warmup,
        }
    }

    /// Build, run to completion, and fold into a [`Report`].
    pub fn run(&self, spec: &ScenarioSpec) -> Report {
        let mut b = self.build(spec);
        b.run_to_end();
        b.finish()
    }

    /// Like [`run`](Self::run), but also return the number of simulator
    /// events processed and the rendered telemetry sidecar (when the spec
    /// enabled one). The campaign runner uses the event count for its
    /// live events/sec readout and the sidecar for `--telemetry-dir`.
    pub fn run_instrumented(&self, spec: &ScenarioSpec) -> (Report, u64, Option<String>) {
        self.run_instrumented_guarded(spec, RunGuards::default())
            .expect("unguarded run cannot be aborted")
    }

    /// [`run_instrumented`](Self::run_instrumented) under cooperative
    /// [`RunGuards`]: if a budget trips mid-run, the partial results are
    /// discarded and the deterministic abort description is returned
    /// instead. This is the campaign watchdog's entry point.
    pub fn run_instrumented_guarded(
        &self,
        spec: &ScenarioSpec,
        guards: RunGuards,
    ) -> Result<(Report, u64, Option<String>), String> {
        self.run_point(spec, guards, false)
            .map(|p| (p.report, p.events, p.sidecar))
    }

    /// The campaign runner's entry point: one guarded point execution
    /// returning everything the run ledger records. With `profile` set
    /// the wall-clock event-loop profiler runs too and its report rides
    /// along — wall-clock data the caller must keep out of the results
    /// store (the runlog is its quarantine zone).
    pub fn run_point(
        &self,
        spec: &ScenarioSpec,
        guards: RunGuards,
        profile: bool,
    ) -> Result<PointRun, String> {
        let mut b = self.build(spec);
        if profile {
            b.sim.enable_profiler();
        }
        b.sim.set_guards(guards);
        b.run_to_end();
        if let Some(reason) = b.sim.aborted() {
            return Err(reason.describe());
        }
        let events = b.sim.events_processed();
        let profile = b.sim.profile_report();
        let sidecar = b.sidecar();
        Ok(PointRun {
            report: b.finish(),
            events,
            sidecar,
            profile,
        })
    }

    /// Run independent scenarios in parallel; `reports[i]` belongs to
    /// `specs[i]`. Results are bit-identical to running each spec with
    /// [`run`](Self::run) serially.
    pub fn run_batch(&self, specs: &[ScenarioSpec]) -> Vec<Report> {
        self.run_batch_map(specs, |engine, spec| engine.run(spec))
    }

    /// The generic parallel sweep under [`run_batch`](Self::run_batch):
    /// applies `f` to every spec on the worker pool and collects results
    /// in spec order. Use it when a harness's per-scenario output is
    /// richer than a [`Report`].
    pub fn run_batch_map<T, F>(&self, specs: &[ScenarioSpec], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&ScenarioEngine, &ScenarioSpec) -> T + Sync,
    {
        parallel_map(specs, self.threads, |spec| f(self, spec))
    }

    /// [`run_batch_map`](Self::run_batch_map) with the executing worker
    /// slot (`0..workers`) passed to `f` — the campaign runner attributes
    /// each point span to a worker track in its run ledger. Slot
    /// assignment is wall-clock-dependent scheduling noise; results are
    /// still returned in spec order and bit-identical across pool sizes.
    pub fn run_batch_map_indexed<T, F>(&self, specs: &[ScenarioSpec], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&ScenarioEngine, &ScenarioSpec, usize) -> T + Sync,
    {
        parallel_map_indexed(specs, self.threads, |spec, worker| f(self, spec, worker))
    }

    /// The qdisc for a scheme-controlled hop with `buffer` packets of
    /// room (the Wi-Fi AP passes its own, larger buffer). The MixedPath
    /// wired hop is definitionally droptail and bypasses this.
    fn make_qdisc(&self, spec: &ScenarioSpec, buffer: usize) -> Box<dyn Qdisc> {
        match &spec.qdisc {
            QdiscSpec::SchemeDefault => spec.scheme.make_qdisc(buffer),
            QdiscSpec::DropTail => Box::new(DropTail::new(buffer)),
            QdiscSpec::AbcWith(cfg) => Box::new(AbcQdisc::new(*cfg)),
            QdiscSpec::DualQueue(policy) => Box::new(DualQueue::new(DualQueueConfig {
                policy: *policy,
                ..Default::default()
            })),
        }
    }
}

/// Everything one campaign point's execution yields. The report feeds
/// the results store; the event count, sidecar, and optional wall-clock
/// profile feed the runner's observability artifacts.
#[derive(Debug, Clone)]
pub struct PointRun {
    /// The scenario's folded report (sim-time data; store-safe).
    pub report: Report,
    /// Simulator events processed (deterministic; store-safe).
    pub events: u64,
    /// Rendered telemetry sidecar, when the spec enabled one.
    pub sidecar: Option<String>,
    /// Wall-clock event-loop profile, when requested. Never store-safe:
    /// the runner quarantines it in the run ledger.
    pub profile: Option<ProfileReport>,
}

/// The `ABC_JOBS` worker-pool override, if set to a positive integer.
pub fn jobs_from_env() -> Option<usize> {
    std::env::var("ABC_JOBS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
}

/// Order-preserving parallel map over a scoped worker pool. Swap the body
/// for `items.par_iter().map(f).collect()` to use rayon instead.
fn parallel_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    parallel_map_indexed(items, threads, |item, _| f(item))
}

/// [`parallel_map`] with the worker slot (`0..workers`) passed to `f`.
/// The serial fast path is worker 0.
fn parallel_map_indexed<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I, usize) -> T + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(|item| f(item, 0)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for w in 0..workers {
            let (next, slots, f) = (&next, &slots, &f);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i], w);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// How one workload-owned flow folds into [`AppReport`] at finish time.
enum AppAccount {
    Web {
        flow: FlowId,
        start: SimTime,
        expected: u64,
    },
    Rtc {
        flow: FlowId,
    },
    Video {
        /// Index into `sender_ids`: metrics live in the sender's driver.
        sender_idx: usize,
    },
}

/// A constructed scenario: the simulator plus everything needed to sample
/// it mid-run and fold it into a [`Report`] afterwards.
pub struct BuiltScenario {
    /// The wired-up simulator.
    pub sim: Simulator,
    /// The metrics hub every node reports into.
    pub hub: Metrics,
    /// The telemetry hub, when the spec asked for one.
    pub telemetry: Option<Rc<RefCell<TelemetryHub>>>,
    /// `(metrics tag, node id)` of each hop, in path order.
    pub hops: Vec<(&'static str, NodeId)>,
    /// Node ids of the senders, in flow order.
    pub sender_ids: Vec<NodeId>,
    /// `(label, flow id)` of every expanded flow, in spec order.
    pub flows: Vec<(String, FlowId)>,
    app_accounts: Vec<AppAccount>,
    scheme_name: String,
    topology: Topology,
    duration: SimDuration,
    warmup: SimDuration,
}

impl BuiltScenario {
    /// Run the simulation to the scenario's end time.
    pub fn run_to_end(&mut self) {
        self.sim.run_until(self.end_time());
    }

    /// Advance simulated time by `d` (for sampling loops).
    pub fn run_chunk(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Render the telemetry sidecar recorded so far as self-describing
    /// JSONL (`None` when the spec asked for no telemetry). Deterministic:
    /// same spec, same bytes, regardless of worker-pool width.
    pub fn sidecar(&self) -> Option<String> {
        self.telemetry.as_ref().map(|t| t.borrow().render_jsonl())
    }

    /// When the scenario ends.
    pub fn end_time(&self) -> SimTime {
        SimTime::ZERO + self.duration
    }

    /// The node id of the first hop (the bottleneck in single-link
    /// scenarios).
    pub fn link_id(&self) -> NodeId {
        self.hops[0].1
    }

    /// Downcast the `idx`-th flow's sender for window inspection.
    pub fn sender(&self, idx: usize) -> &Sender {
        self.sim
            .node(self.sender_ids[idx])
            .and_then(|n| n.as_any().downcast_ref())
            .expect("sender node")
    }

    /// Downcast a hop to its [`LinkQueue`] (panics on the Wi-Fi hop,
    /// which is an AP, or an unknown tag).
    pub fn link_queue(&self, tag: &str) -> &LinkQueue {
        let id = self.hop_id(tag);
        self.sim
            .node(id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap_or_else(|| panic!("hop {tag:?} is not a LinkQueue"))
    }

    /// Downcast the Wi-Fi hop to its access point.
    pub fn wifi_ap(&self, tag: &str) -> &WifiAp {
        let id = self.hop_id(tag);
        self.sim
            .node(id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap_or_else(|| panic!("hop {tag:?} is not a WifiAp"))
    }

    /// Mutable AP access (the estimator's `estimate()` needs `&mut` for
    /// window expiry).
    pub fn wifi_ap_mut(&mut self, tag: &str) -> &mut WifiAp {
        let id = self.hop_id(tag);
        self.sim
            .node_mut(id)
            .and_then(|n| n.as_any_mut().downcast_mut())
            .unwrap_or_else(|| panic!("hop {tag:?} is not a WifiAp"))
    }

    fn hop_id(&self, tag: &str) -> NodeId {
        self.hops
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, id)| *id)
            .unwrap_or_else(|| panic!("no hop tagged {tag:?}"))
    }

    /// Account link delivery opportunities up to the scenario end on every
    /// wired/cellular hop (Wi-Fi has no opportunity accounting).
    fn finalize_opportunities(&self) {
        let end = self.end_time();
        for (_, id) in &self.hops {
            if let Some(lq) = self
                .sim
                .node(*id)
                .and_then(|n| n.as_any().downcast_ref::<LinkQueue>())
            {
                lq.finalize_opportunity(end);
            }
        }
    }

    /// Fold every workload account into the report's [`AppReport`]
    /// (`None` when the scenario ran no workloads). Needs `&mut self`:
    /// video sessions finalize their playback clocks at the end time.
    fn fold_app_metrics(&mut self) -> Option<AppReport> {
        if self.app_accounts.is_empty() {
            return None;
        }
        let end = self.end_time();
        let mut web_outcomes: Vec<workload::WebFlowOutcome> = Vec::new();
        let mut rtc_pkts = 0u64;
        let mut rtc_misses = 0u64;
        let mut rtc_delays_ms: Vec<f64> = Vec::new();
        let mut videos: Vec<workload::VideoMetrics> = Vec::new();
        let mut saw_rtc = false;
        for account in std::mem::take(&mut self.app_accounts) {
            match account {
                AppAccount::Web {
                    flow,
                    start,
                    expected,
                } => {
                    let completed_at = self
                        .hub
                        .borrow()
                        .flows
                        .get(&flow)
                        .and_then(|r| r.completed_at);
                    web_outcomes.push(workload::WebFlowOutcome {
                        start,
                        expected_bytes: expected,
                        completed_at,
                    });
                }
                AppAccount::Rtc { flow } => {
                    saw_rtc = true;
                    if let Some(rec) = self.hub.borrow().flows.get(&flow) {
                        // unique frames only: duplicates from spurious
                        // retransmissions must not dilute the miss rate
                        rtc_pkts += rec.unique_pkts;
                        rtc_misses += rec.deadline_misses;
                        rtc_delays_ms.extend(rec.delays_s.iter().map(|d| d * 1e3));
                    }
                }
                AppAccount::Video { sender_idx } => {
                    let id = self.sender_ids[sender_idx];
                    let sender: &mut Sender = self
                        .sim
                        .node_mut(id)
                        .and_then(|n| n.as_any_mut().downcast_mut())
                        .expect("video sender node");
                    let client: &mut AbrClient = sender
                        .app_driver_mut()
                        .and_then(|d| d.as_any_mut().downcast_mut())
                        .expect("video sender has an AbrClient driver");
                    client.finalize(end);
                    videos.push(client.metrics());
                }
            }
        }
        Some(AppReport {
            web: (!web_outcomes.is_empty()).then(|| workload::metrics::web_metrics(&web_outcomes)),
            rtc: saw_rtc
                .then(|| workload::metrics::rtc_metrics(rtc_pkts, rtc_misses, &mut rtc_delays_ms)),
            video: (!videos.is_empty()).then(|| workload::metrics::merge_video(&videos)),
        })
    }

    /// Fold the run into the paper's [`Report`].
    pub fn finish(mut self) -> Report {
        let app = self.fold_app_metrics();
        self.finalize_opportunities();
        let hub = self.hub.borrow();
        let window = self.duration.saturating_sub(self.warmup);
        let empty = LinkRecord::default();
        let link_of = |tag: &str| -> &LinkRecord { hub.links.get(tag).unwrap_or(&empty) };
        let primary = link_of(self.topology.primary_tag());

        let utilization = match &self.topology {
            Topology::SingleBottleneck(_)
            | Topology::MixedPath { .. }
            | Topology::Asymmetric { .. } => primary.utilization(),
            Topology::ParkingLot { .. } => {
                // Generalized two-hop rule: the tightest hop bounds what
                // was achievable; report final-hop delivery against it.
                let min_opportunity = self
                    .hops
                    .iter()
                    .map(|(tag, _)| link_of(tag).opportunity_bits)
                    .fold(f64::INFINITY, f64::min);
                if min_opportunity > 0.0 && min_opportunity.is_finite() {
                    (primary.delivered_bytes as f64 * 8.0 / min_opportunity).min(1.0)
                } else {
                    0.0
                }
            }
            Topology::TwoHop { .. } => {
                // The tighter hop determines achievable utilization: report
                // the final hop's delivery against the min-capacity hop.
                let up = link_of("uplink");
                let down = link_of("downlink");
                let min_opportunity = up.opportunity_bits.min(down.opportunity_bits);
                if min_opportunity > 0.0 {
                    (down.delivered_bytes as f64 * 8.0 / min_opportunity).min(1.0)
                } else {
                    0.0
                }
            }
            // No opportunity accounting on Wi-Fi.
            Topology::Wifi { .. } => f64::NAN,
        };

        let qdelay_series: Vec<(f64, f64)> = primary
            .qdelay_series
            .iter()
            .map(|(t, d)| (t.as_secs_f64(), d.as_millis_f64()))
            .collect();
        let drops = self
            .hops
            .iter()
            .map(|(tag, _)| link_of(tag).dropped_pkts)
            .sum();
        let flow_tputs: Vec<f64> = hub
            .flows
            .values()
            .map(|f| f.throughput_over(window) / 1e6)
            .collect();
        let capacity_series = self
            .topology
            .capacity_link()
            .map(|l| l.capacity_series(self.duration, SimDuration::from_millis(100)))
            .unwrap_or_default();
        Report {
            scheme: self.scheme_name.clone(),
            utilization,
            delay_ms: hub.delay_summary_ms(),
            qdelay_ms: primary.qdelay_summary_ms(),
            total_tput_mbps: flow_tputs.iter().sum(),
            jain: hub.jain(window),
            drops,
            flow_tputs_mbps: flow_tputs,
            tput_series: hub.total_throughput_series_mbps(),
            qdelay_series: downsample(&qdelay_series, 600),
            capacity_series,
            app,
            impairments: hub.impairments.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(scheme: Scheme) -> ScenarioSpec {
        ScenarioSpec::single(scheme, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .duration_secs(2)
            .warmup_secs(1)
    }

    #[test]
    fn single_bottleneck_round_trip() {
        let r = ScenarioEngine::new().run(&tiny(Scheme::Abc));
        assert!(r.utilization > 0.5, "{}", r.row());
        assert_eq!(r.flow_tputs_mbps.len(), 1);
        assert!(!r.capacity_series.is_empty());
    }

    #[test]
    fn batch_matches_serial_exactly() {
        let specs: Vec<ScenarioSpec> = [Scheme::Abc, Scheme::Cubic].map(tiny).into_iter().collect();
        let serial: Vec<Report> = specs.iter().map(|s| ScenarioEngine::new().run(s)).collect();
        let batch = ScenarioEngine::with_threads(2).run_batch(&specs);
        for (a, b) in serial.iter().zip(&batch) {
            assert_eq!(a, b, "parallel placement changed a result");
        }
    }

    #[test]
    fn explicit_flows_keep_labels_and_order() {
        let mut spec = tiny(Scheme::Abc);
        spec.flows = FlowSchedule::Explicit(vec![
            FlowSpec::new("main"),
            FlowSpec::new("cross").scheme(Scheme::Cubic),
        ]);
        let b = ScenarioEngine::new().build(&spec);
        assert_eq!(b.flows[0].0, "main");
        assert_eq!(b.flows[1], ("cross".to_string(), FlowId(2)));
        assert_eq!(b.sender_ids.len(), 2);
    }

    #[test]
    fn short_flow_expansion_is_seeded() {
        let mut spec = tiny(Scheme::Abc);
        spec.short_flows = Some(PoissonShortFlows {
            load: 0.25,
            bytes: 10_000,
            scheme: Scheme::Cubic,
        });
        let a = spec.expand_flows();
        let b = spec.expand_flows();
        assert!(a.len() > 1, "expected short-flow arrivals, got {}", a.len());
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.start == y.start && x.label == y.label));
        let c = spec.clone().seed(99).expand_flows();
        assert!(
            a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x.start != y.start),
            "different seeds should reshuffle arrivals"
        );
    }

    #[test]
    fn mixed_path_hops_are_tagged() {
        let spec = ScenarioSpec::mixed_path(
            LinkSpec::Constant(Rate::from_mbps(16.0)),
            Rate::from_mbps(12.0),
        )
        .duration_secs(2);
        let mut b = ScenarioEngine::new().build(&spec);
        b.run_to_end();
        let _wireless = b.link_queue("wireless");
        let _wired = b.link_queue("wired");
        let r = b.finish();
        assert!(r.total_tput_mbps > 5.0, "{}", r.row());
    }

    #[test]
    fn entry_hop_out_of_range_panics() {
        let mut spec = tiny(Scheme::Abc);
        spec.flows = FlowSchedule::Explicit(vec![FlowSpec::new("bad").entry_hop(3)]);
        let res = std::panic::catch_unwind(|| ScenarioEngine::new().build(&spec));
        assert!(res.is_err());
    }

    #[test]
    fn abc_jobs_env_overrides_pool_size() {
        // other tests only ever read this var, and pool size never affects
        // results, so briefly setting it here is race-safe
        std::env::set_var("ABC_JOBS", "3");
        assert_eq!(jobs_from_env(), Some(3));
        assert_eq!(ScenarioEngine::new().threads(), 3);
        std::env::set_var("ABC_JOBS", "0");
        assert_eq!(jobs_from_env(), None, "0 workers is not a pool");
        std::env::set_var("ABC_JOBS", "lots");
        assert_eq!(jobs_from_env(), None);
        std::env::remove_var("ABC_JOBS");
        assert_eq!(jobs_from_env(), None);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}
