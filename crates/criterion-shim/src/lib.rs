//! # abc-criterion — an offline, minimal stand-in for `criterion`
//!
//! The workspace builds with zero external dependencies, so the bench
//! targets' `criterion` surface is reimplemented here: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros. The lib target is named
//! `criterion`, so bench files keep their idiomatic imports.
//!
//! It is a *timer*, not a statistics engine: each benchmark runs a short
//! calibration pass, then `sample_size` timed samples, and prints
//! min/median/mean per iteration. Good enough to spot order-of-magnitude
//! regressions in CI logs; swap in the real crate for publication-grade
//! measurements.

use std::time::{Duration, Instant};

/// Re-exported name-compatible opaque-value barrier.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const DEFAULT_SAMPLES: usize = 20;
/// Target wall-clock budget per benchmark's measurement phase.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(500);

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            samples: DEFAULT_SAMPLES,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, DEFAULT_SAMPLES, f);
        self
    }
}

pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.samples, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    /// Iterations to run per `iter` call, set by calibration.
    iters: u64,
    /// Total time spent inside closures across the sample.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // calibration: one iteration to size the per-sample batch
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = TARGET_SAMPLE_TIME.as_nanos() / samples.max(1) as u128;
    let iters = (per_sample / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({samples} samples × {iters} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Mirrors `criterion_group!`: bundles bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
