//! The event queue: a hierarchical timer-wheel / calendar queue with a
//! far-future overflow heap, deterministic `(time, seq)` pop order, and
//! O(1) lazy cancellation.
//!
//! Three tiers by distance from the cursor:
//!
//! * **near** — a small binary heap holding every event whose slot is at or
//!   before the cursor slot. Pops come from here, so intra-slot ordering is
//!   exact `(time, seq)` — bit-identical to a global comparison heap.
//! * **wheel** — `WHEEL_SLOTS` unsorted buckets of `SLOT_NS`-wide slots
//!   covering the next ~67 ms. Push and bucket-drain are O(1) amortized.
//! * **overflow** — a heap for events beyond the wheel horizon (RTO timers,
//!   long trace gaps); refilled into the wheel as the cursor advances.
//!
//! Cancellation is lazy: cancelled sequence numbers go into a tombstone set
//! and are skipped (and forgotten) when their event surfaces. The queue
//! never reports tombstones in `len()`, so a fully-cancelled queue is empty.
//!
//! [`EventQueue::new_reference`] builds the same queue over a plain
//! `BinaryHeap` — the pre-wheel implementation — kept as the ordering
//! oracle for the golden pop-order and property tests.

use crate::packet::{NodeId, Packet};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for the `u64` tombstone set: the default SipHash
/// costs more than the queue operation it guards. Determinism is
/// unaffected — the set is only probed for membership, never iterated.
#[derive(Default)]
pub struct SeqHasher(u64);

impl Hasher for SeqHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    #[inline]
    fn write_u64(&mut self, x: u64) {
        let mut h = x.wrapping_mul(0x9E3779B97F4A7C15);
        h ^= h >> 32;
        self.0 = h;
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type SeqSet = HashSet<u64, BuildHasherDefault<SeqHasher>>;

/// What a node is asked to do when its event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet arrives at the node (propagation already elapsed). Boxed so
    /// queue operations move 8 bytes, not the whole packet; the box itself
    /// is pooled by the simulator and reused across hops.
    Deliver(Box<Packet>),
    /// A timer previously set by the node fires; the token is whatever the
    /// node passed to [`crate::node::Context::set_timer`].
    Timer(u64),
}

/// A scheduled occurrence: `kind` happens at `node` when the clock
/// reaches `time`.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// The node that handles it.
    pub node: NodeId,
    /// What happens (packet delivery or timer).
    pub kind: EventKind,
    /// Global insertion order: equal-time events fire in the order they
    /// were scheduled, which makes runs bit-reproducible.
    seq: u64,
}

impl Event {
    /// The event's scheduling sequence number (its cancellation handle).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then first-scheduled)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Default slot width exponent: 2^16 ns ≈ 65.5 µs — near the densest
/// inter-event gap the pacing clocks produce, so a slot rarely holds more
/// than a handful of events and the near heap stays tiny.
pub const DEFAULT_SLOT_SHIFT: u32 = 16;
/// Accepted range for a configured slot-width exponent: 2^10 ns (1 µs,
/// heap-like precision) up to 2^26 ns (~67 ms slots, ~69 s horizon).
pub const SLOT_SHIFT_RANGE: std::ops::RangeInclusive<u32> = 10..=26;
/// Wheel span: 1024 slots (≈ 67 ms at the default shift) — longer than
/// any propagation or serialization delay in the evaluated scenarios, so
/// only RTO-scale timers ever touch the overflow heap.
const WHEEL_SLOTS: u64 = 1024;

/// The timer-wheel backend.
#[derive(Debug)]
struct Wheel {
    near: BinaryHeap<Event>,
    slots: Vec<Vec<Event>>,
    /// Events currently held in `slots`.
    wheel_len: usize,
    overflow: BinaryHeap<Event>,
    /// All events with `slot <= cur_slot` live in `near`; slots in
    /// `(cur_slot, cur_slot + WHEEL_SLOTS)` map to `slots[slot % WHEEL_SLOTS]`;
    /// later ones wait in `overflow`.
    cur_slot: u64,
    /// Slot width exponent: a slot spans `2^slot_shift` ns. Wider slots
    /// trade per-push wheel precision for larger intra-slot batches —
    /// the right trade once µs-dense event storms (thousands of flows)
    /// put many events into every slot anyway. Pop order is exact
    /// `(time, seq)` at every width: the near heap re-sorts whatever a
    /// slot drains into it, so the shift is a pure performance knob.
    slot_shift: u32,
}

impl Wheel {
    fn new(slot_shift: u32) -> Self {
        Wheel {
            near: BinaryHeap::new(),
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            cur_slot: 0,
            slot_shift,
        }
    }

    #[inline]
    fn slot_of(&self, t: SimTime) -> u64 {
        t.as_nanos() >> self.slot_shift
    }

    fn push(&mut self, ev: Event) {
        let s = self.slot_of(ev.time);
        if s <= self.cur_slot {
            self.near.push(ev);
        } else if s < self.cur_slot + WHEEL_SLOTS {
            self.slots[(s % WHEEL_SLOTS) as usize].push(ev);
            self.wheel_len += 1;
        } else {
            self.overflow.push(ev);
        }
    }

    /// Advance the cursor until `near` holds the globally earliest event
    /// (or everything is empty).
    fn ensure_near(&mut self) {
        while self.near.is_empty() {
            if self.wheel_len == 0 {
                // Jump straight to the next overflow event's slot.
                let Some(head) = self.overflow.peek() else {
                    return;
                };
                self.cur_slot = self.slot_of(head.time);
            } else {
                self.cur_slot += 1;
            }
            let bucket = (self.cur_slot % WHEEL_SLOTS) as usize;
            if !self.slots[bucket].is_empty() {
                self.wheel_len -= self.slots[bucket].len();
                self.near.extend(self.slots[bucket].drain(..));
            }
            // The horizon moved: migrate overflow events that now fit.
            while let Some(head) = self.overflow.peek() {
                let s = self.slot_of(head.time);
                if s >= self.cur_slot + WHEEL_SLOTS {
                    break;
                }
                let ev = self.overflow.pop().expect("peeked overflow vanished");
                if s <= self.cur_slot {
                    self.near.push(ev);
                } else {
                    self.slots[(s % WHEEL_SLOTS) as usize].push(ev);
                    self.wheel_len += 1;
                }
            }
        }
    }

    fn pop_min(&mut self) -> Option<Event> {
        self.ensure_near();
        self.near.pop()
    }

    fn peek_min(&mut self) -> Option<&Event> {
        self.ensure_near();
        self.near.peek()
    }
}

/// Queue implementation selector: the production wheel, or the original
/// comparison heap kept as a reference for ordering tests.
#[derive(Debug)]
enum Backend {
    Wheel(Wheel),
    Naive(BinaryHeap<Event>),
}

impl Backend {
    #[inline]
    fn push(&mut self, ev: Event) {
        match self {
            Backend::Wheel(w) => w.push(ev),
            Backend::Naive(h) => h.push(ev),
        }
    }

    #[inline]
    fn pop_min(&mut self) -> Option<Event> {
        match self {
            Backend::Wheel(w) => w.pop_min(),
            Backend::Naive(h) => h.pop(),
        }
    }

    #[inline]
    fn peek_min(&mut self) -> Option<&Event> {
        match self {
            Backend::Wheel(w) => w.peek_min(),
            Backend::Naive(h) => h.peek(),
        }
    }
}

/// Time-ordered event queue with cancellation.
#[derive(Debug)]
pub struct EventQueue {
    backend: Backend,
    /// Tombstones: sequence numbers cancelled but not yet surfaced.
    cancelled: SeqSet,
    /// Live (non-cancelled) events currently queued.
    live: usize,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue at the default timer-wheel slot width
    /// ([`DEFAULT_SLOT_SHIFT`]).
    pub fn new() -> Self {
        Self::with_slot_shift(DEFAULT_SLOT_SHIFT)
    }

    /// A wheel-backed queue with a configured slot width of `2^shift` ns.
    /// Pop order is identical at every width (the near heap restores
    /// exact `(time, seq)` order within a drained slot); wider slots
    /// amortize cursor advances when µs-dense event storms put many
    /// events into every slot. `shift` must lie in [`SLOT_SHIFT_RANGE`].
    pub fn with_slot_shift(shift: u32) -> Self {
        assert!(
            SLOT_SHIFT_RANGE.contains(&shift),
            "slot shift {shift} outside supported range {SLOT_SHIFT_RANGE:?}"
        );
        EventQueue {
            backend: Backend::Wheel(Wheel::new(shift)),
            cancelled: SeqSet::default(),
            live: 0,
            next_seq: 0,
        }
    }

    /// The pre-wheel `BinaryHeap` implementation, kept as the ordering
    /// oracle for golden pop-order and property tests.
    pub fn new_reference() -> Self {
        EventQueue {
            backend: Backend::Naive(BinaryHeap::new()),
            cancelled: SeqSet::default(),
            live: 0,
            next_seq: 0,
        }
    }

    /// Schedule an event; the returned sequence number doubles as the
    /// handle for [`EventQueue::cancel`].
    pub fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(time, node, kind, seq);
        seq
    }

    /// Schedule an event under an externally-assigned sequence number (the
    /// simulator assigns them eagerly so nodes can hold cancellation
    /// handles before the effect queue is flushed).
    pub(crate) fn push_with_seq(&mut self, time: SimTime, node: NodeId, kind: EventKind, seq: u64) {
        self.next_seq = self.next_seq.max(seq + 1);
        self.live += 1;
        self.backend.push(Event {
            time,
            node,
            kind,
            seq,
        });
    }

    /// Cancel a pending event by its sequence number. The caller must only
    /// cancel events that are still queued (the simulator's timer handles
    /// enforce this); cancelling is O(1) and the slot is reclaimed lazily.
    pub fn cancel(&mut self, seq: u64) {
        debug_assert!(seq < self.next_seq, "cancel of never-issued seq {seq}");
        if self.cancelled.insert(seq) {
            debug_assert!(self.live > 0, "cancel on empty queue");
            self.live = self.live.saturating_sub(1);
        }
    }

    /// Remove and return the earliest live event (time, then insertion
    /// order); cancelled tombstones are skipped.
    pub fn pop(&mut self) -> Option<Event> {
        loop {
            let ev = self.backend.pop_min()?;
            if self.cancelled.remove(&ev.seq) {
                continue; // tombstone — skip and forget
            }
            self.live -= 1;
            return Some(ev);
        }
    }

    /// Pop the earliest event only if it fires at or before `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event> {
        loop {
            if self.backend.peek_min()?.time > deadline {
                return None;
            }
            let ev = self.backend.pop_min().expect("peeked event vanished");
            if self.cancelled.remove(&ev.seq) {
                continue; // tombstone — skip and forget
            }
            self.live -= 1;
            return Some(ev);
        }
    }

    /// Pop the head event only if it is a `Deliver` firing at exactly
    /// `time` for `node`.
    ///
    /// The simulator uses this to coalesce an adjacent run of
    /// same-instant deliveries to one node into a single batched handler
    /// call ([`crate::node::Node::handle_batch`]). The check is
    /// restricted to `Deliver` events because delivers can never be
    /// tombstoned — only timers hand out cancellation handles — so an
    /// earlier handler in the batch cannot invalidate a later batch
    /// member, and batching stays order-equivalent to popping one event
    /// at a time.
    pub fn pop_if_deliver_matching(&mut self, time: SimTime, node: NodeId) -> Option<Event> {
        loop {
            let head = self.backend.peek_min()?;
            if self.cancelled.contains(&head.seq) {
                let ev = self.backend.pop_min().expect("peeked event vanished");
                self.cancelled.remove(&ev.seq);
                continue; // tombstone — skip and forget
            }
            if head.time != time || head.node != node || !matches!(head.kind, EventKind::Deliver(_))
            {
                return None;
            }
            let ev = self.backend.pop_min().expect("peeked event vanished");
            self.live -= 1;
            return Some(ev);
        }
    }

    /// Earliest pending event time. Takes `&mut self`: the wheel advances
    /// its cursor and discards tombstones to find the head.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let cancelled = {
                let ev = self.backend.peek_min()?;
                if !self.cancelled.contains(&ev.seq) {
                    return Some(ev.time);
                }
                ev.seq
            };
            self.cancelled.remove(&cancelled);
            self.backend.pop_min();
        }
    }

    /// Live (not-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Tier occupancy `(near, wheel slots, overflow)`, tombstones
    /// included — a raw structural snapshot for the event-loop profiler.
    /// The reference heap reports everything as `near`.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        match &self.backend {
            Backend::Wheel(w) => (w.near.len(), w.wheel_len, w.overflow.len()),
            Backend::Naive(h) => (h.len(), 0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn drain_tokens(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer(x) => x,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), NodeId(0), EventKind::Timer(3));
        q.push(t(10), NodeId(0), EventKind::Timer(1));
        q.push(t(20), NodeId(0), EventKind::Timer(2));
        assert_eq!(drain_tokens(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(t(5), NodeId(0), EventKind::Timer(i));
        }
        for i in 0..100u64 {
            match q.pop().unwrap().kind {
                EventKind::Timer(x) => assert_eq!(x, i),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(42), NodeId(1), EventKind::Timer(0));
        q.push(t(7), NodeId(1), EventKind::Timer(0));
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        let mut q = EventQueue::new();
        // seconds apart — far beyond the wheel horizon
        q.push(t(5_000), NodeId(0), EventKind::Timer(2));
        q.push(t(1), NodeId(0), EventKind::Timer(0));
        q.push(t(900), NodeId(0), EventKind::Timer(1));
        q.push(t(60_000), NodeId(0), EventKind::Timer(3));
        assert_eq!(drain_tokens(&mut q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cancel_removes_event_and_len() {
        let mut q = EventQueue::new();
        let a = q.push(t(10), NodeId(0), EventKind::Timer(1));
        let b = q.push(t(20), NodeId(0), EventKind::Timer(2));
        q.push(t(30), NodeId(0), EventKind::Timer(3));
        assert_eq!(q.len(), 3);
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(30)));
        assert_eq!(drain_tokens(&mut q), vec![3]);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_everything_empties_queue() {
        let mut q = EventQueue::new();
        let seqs: Vec<u64> = (0..10)
            .map(|i| q.push(t(i * 7), NodeId(0), EventKind::Timer(i)))
            .collect();
        for s in seqs {
            q.cancel(s);
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_pop_push_preserves_order() {
        let mut q = EventQueue::new();
        q.push(t(10), NodeId(0), EventKind::Timer(0));
        q.push(t(200), NodeId(0), EventKind::Timer(2));
        assert_eq!(q.pop().unwrap().time, t(10));
        // push between the cursor and the queued far event
        q.push(t(50), NodeId(0), EventKind::Timer(1));
        assert_eq!(q.pop().unwrap().time, t(50));
        assert_eq!(q.pop().unwrap().time, t(200));
    }

    #[test]
    fn slot_shift_never_changes_pop_order() {
        // The slot width is a pure performance knob: every configured
        // shift must reproduce the reference heap's exact (time, seq)
        // pop order on a dense mixed-horizon schedule.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut times = Vec::new();
        for i in 0..3_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ns = match i % 4 {
                0 => x % 1_000,
                1 => x % 1_000_000,
                2 => x % 100_000_000,
                _ => x % 10_000_000_000,
            };
            times.push(ns);
        }
        for shift in [10u32, 16, 20, 26] {
            let mut wheel = EventQueue::with_slot_shift(shift);
            let mut naive = EventQueue::new_reference();
            for (i, &ns) in times.iter().enumerate() {
                let tm = SimTime::from_nanos(ns);
                wheel.push(tm, NodeId(0), EventKind::Timer(i as u64));
                naive.push(tm, NodeId(0), EventKind::Timer(i as u64));
            }
            loop {
                match (wheel.pop(), naive.pop()) {
                    (Some(a), Some(b)) => {
                        assert_eq!((a.time, a.seq), (b.time, b.seq), "shift {shift}")
                    }
                    (None, None) => break,
                    _ => panic!("shift {shift}: queues drained at different lengths"),
                }
            }
        }
    }

    #[test]
    fn pop_if_deliver_matching_takes_only_adjacent_deliveries() {
        let mut q = EventQueue::new();
        let pkt = || EventKind::Deliver(crate::queue::test_packet(0, 100));
        q.push(t(10), NodeId(2), pkt());
        q.push(t(10), NodeId(2), pkt());
        q.push(t(10), NodeId(2), EventKind::Timer(7));
        q.push(t(10), NodeId(3), pkt());
        // no head yet at a different coordinate
        assert!(q.pop_if_deliver_matching(t(10), NodeId(3)).is_none());
        let first = q.pop().unwrap();
        assert_eq!(first.node, NodeId(2));
        // second same-instant delivery to the same node batches…
        assert!(q.pop_if_deliver_matching(t(10), NodeId(2)).is_some());
        // …but the timer stops the batch even at the same (time, node)
        assert!(q.pop_if_deliver_matching(t(10), NodeId(2)).is_none());
        assert!(matches!(q.pop().unwrap().kind, EventKind::Timer(7)));
        assert_eq!(q.pop().unwrap().node, NodeId(3));
    }

    #[test]
    fn wheel_matches_reference_on_dense_schedule() {
        let mut wheel = EventQueue::new();
        let mut naive = EventQueue::new_reference();
        // deterministic LCG: a mix of near, mid, and far times with ties
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        let mut times = Vec::new();
        for i in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ns = match i % 5 {
                0 => x % 1_000,          // sub-µs ties
                1 => x % 1_000_000,      // same-slot
                2 => x % 100_000_000,    // in-wheel
                _ => x % 10_000_000_000, // overflow
            };
            times.push(ns);
        }
        for (i, &ns) in times.iter().enumerate() {
            wheel.push(
                SimTime::from_nanos(ns),
                NodeId(0),
                EventKind::Timer(i as u64),
            );
            naive.push(
                SimTime::from_nanos(ns),
                NodeId(0),
                EventKind::Timer(i as u64),
            );
        }
        loop {
            let (a, b) = (wheel.pop(), naive.pop());
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!((x.time, x.seq), (y.time, y.seq));
                }
                (None, None) => break,
                _ => panic!("queues drained at different lengths"),
            }
        }
    }
}
