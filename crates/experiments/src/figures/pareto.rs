//! Table 1, Fig. 8 (Pareto scatter), Fig. 9 / Fig. 15 (per-trace bars),
//! Fig. 18 (RTT sweep).

use super::matrix::{averages, run_matrix, sim_duration, traces};
use super::Scale;
use crate::engine::ScenarioEngine;
use crate::scenario::{CellScenario, LinkSpec};
use crate::scheme::{Scheme, CELLULAR_LINEUP};
use crate::topos::TwoHopScenario;
use netsim::time::SimDuration;
use std::fmt::Write;

/// Table 1 of §1: throughput and 95th-percentile delay normalized to ABC,
/// averaged over the traces.
pub fn table1(scale: Scale) -> String {
    let schemes = [
        Scheme::Abc,
        Scheme::Xcp,
        Scheme::CubicCodel,
        Scheme::Copa,
        Scheme::Cubic,
        Scheme::Pcc,
        Scheme::Bbr,
        Scheme::Sprout,
        Scheme::Verus,
    ];
    let cells = run_matrix(
        &schemes,
        &traces(scale),
        SimDuration::from_millis(100),
        sim_duration(scale),
    );
    let avg = averages(&cells, &schemes);
    let (abc_util, abc_delay) = avg
        .iter()
        .find(|(s, ..)| *s == Scheme::Abc)
        .map(|&(_, u, d, ..)| (u, d))
        .expect("ABC in lineup");
    let mut out = String::new();
    writeln!(
        out,
        "# Table 1 — normalized throughput and 95p delay (ABC = 1)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>11} {:>18}",
        "Scheme", "Norm. Tput", "Norm. Delay (95%)"
    )
    .unwrap();
    for (s, util, p95, ..) in &avg {
        writeln!(
            out,
            "{:<14} {:>11.2} {:>18.2}",
            s.name(),
            util / abc_util,
            p95 / abc_delay
        )
        .unwrap();
    }
    out
}

/// Fig. 8: utilization vs 95th-percentile per-packet delay on (a) a
/// downlink trace, (b) an uplink trace, (c) the two-hop uplink+downlink
/// path. One row per scheme per panel; the Pareto frontier of the
/// *non-ABC* schemes is flagged so ABC's position relative to it is
/// explicit.
pub fn fig8(scale: Scale) -> String {
    let down = cellular::builtin("Verizon1").unwrap();
    let up = cellular::builtin("Verizon2").unwrap();
    let dur = sim_duration(scale);
    let mut out = String::new();

    let panel = |name: &str, rows: Vec<(String, f64, f64)>, out: &mut String| {
        writeln!(out, "\n## Fig 8{name}").unwrap();
        writeln!(
            out,
            "{:<14} {:>7} {:>16} {:>8}",
            "Scheme", "Util", "95p delay (ms)", "Pareto"
        )
        .unwrap();
        // Pareto frontier among non-ABC schemes: no other scheme has both
        // higher util and lower delay
        for (n, u, d) in &rows {
            let is_abc = n.starts_with("ABC");
            let dominated = rows
                .iter()
                .filter(|(m, ..)| !m.starts_with("ABC") && m != n)
                .any(|(_, u2, d2)| *u2 >= *u && *d2 <= *d);
            let tag = if is_abc {
                if !dominated {
                    "OUTSIDE"
                } else {
                    "inside"
                }
            } else if !dominated {
                "frontier"
            } else {
                ""
            };
            writeln!(out, "{:<14} {:>7.3} {:>16.1} {:>8}", n, u, d, tag).unwrap();
        }
    };

    let engine = ScenarioEngine::new();
    for (tag, trace) in [("a (downlink)", &down), ("b (uplink)", &up)] {
        let specs: Vec<_> = CELLULAR_LINEUP
            .iter()
            .map(|&s| {
                let mut sc = CellScenario::new(s, LinkSpec::Trace(trace.clone()));
                sc.duration = dur;
                sc.spec()
            })
            .collect();
        let rows: Vec<(String, f64, f64)> = CELLULAR_LINEUP
            .iter()
            .zip(engine.run_batch(&specs))
            .map(|(s, r)| (s.name(), r.utilization, r.delay_ms.p95))
            .collect();
        panel(tag, rows, &mut out);
    }

    // (c) two-hop uplink + downlink
    let specs: Vec<_> = CELLULAR_LINEUP
        .iter()
        .map(|&s| {
            let mut sc = TwoHopScenario::new(
                s,
                LinkSpec::Trace(up.clone()),
                LinkSpec::Trace(down.clone()),
            );
            sc.duration = dur;
            sc.spec()
        })
        .collect();
    let rows: Vec<(String, f64, f64)> = CELLULAR_LINEUP
        .iter()
        .zip(engine.run_batch(&specs))
        .map(|(s, r)| (s.name(), r.utilization, r.delay_ms.p95))
        .collect();
    panel("c (uplink+downlink, two-hop)", rows, &mut out);
    out
}

/// Fig. 9: utilization and 95th-percentile delay for every scheme on every
/// trace, plus the cross-trace average.
pub fn fig9(scale: Scale) -> String {
    fig9_like(scale, false)
}

/// Fig. 15 (Appendix C): same sweep, *mean* per-packet delay.
pub fn fig15(scale: Scale) -> String {
    fig9_like(scale, true)
}

fn fig9_like(scale: Scale, mean_delay: bool) -> String {
    let trs = traces(scale);
    let cells = run_matrix(
        &CELLULAR_LINEUP,
        &trs,
        SimDuration::from_millis(100),
        sim_duration(scale),
    );
    let mut out = String::new();
    let which = if mean_delay { "mean" } else { "95p" };
    writeln!(
        out,
        "# Fig {} — utilization and {which} per-packet delay per trace",
        if mean_delay { "15" } else { "9" }
    )
    .unwrap();
    write!(out, "{:<14}", "Scheme").unwrap();
    for t in &trs {
        write!(out, " {:>18}", t.name).unwrap();
    }
    writeln!(out, " {:>18}", "AVERAGE").unwrap();
    for &s in &CELLULAR_LINEUP {
        write!(out, "{:<14}", s.name()).unwrap();
        let mut us = Vec::new();
        let mut ds = Vec::new();
        for t in &trs {
            let c = cells
                .iter()
                .find(|c| c.scheme == s && c.trace == t.name)
                .unwrap();
            let d = if mean_delay {
                c.report.delay_ms.mean
            } else {
                c.report.delay_ms.p95
            };
            us.push(c.report.utilization);
            ds.push(d);
            write!(out, " {:>8.2}/{:>6.0}ms", c.report.utilization, d).unwrap();
        }
        let mu = us.iter().sum::<f64>() / us.len() as f64;
        let md = ds.iter().sum::<f64>() / ds.len() as f64;
        writeln!(out, " {:>8.2}/{:>6.0}ms", mu, md).unwrap();
    }
    out
}

/// Fig. 18 (Appendix E): the full lineup at RTT ∈ {20, 50, 100, 200} ms on
/// one trace; reports utilization and 95p *queuing* delay (the appendix's
/// y-axis), so propagation differences don't mask the comparison.
pub fn fig18(scale: Scale) -> String {
    let trace = cellular::builtin("Verizon1").unwrap();
    let rtts = [20u64, 50, 100, 200];
    let dur = sim_duration(scale);
    let schemes: &[Scheme] = if scale.reduced() {
        &[Scheme::Abc, Scheme::CubicCodel, Scheme::Cubic]
    } else {
        &CELLULAR_LINEUP
    };
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 18 — RTT sensitivity (utilization / 95p queuing delay ms)"
    )
    .unwrap();
    write!(out, "{:<14}", "Scheme").unwrap();
    for r in rtts {
        write!(out, " {:>16}", format!("RTT {r}ms")).unwrap();
    }
    writeln!(out).unwrap();
    // the full scheme × RTT grid as one parallel batch
    let specs: Vec<_> = schemes
        .iter()
        .flat_map(|&s| {
            rtts.map(|rtt| {
                let mut sc = CellScenario::new(s, LinkSpec::Trace(trace.clone()));
                sc.rtt = SimDuration::from_millis(rtt);
                sc.duration = dur;
                sc.spec()
            })
        })
        .collect();
    let reports = ScenarioEngine::new().run_batch(&specs);
    for (i, &s) in schemes.iter().enumerate() {
        write!(out, "{:<14}", s.name()).unwrap();
        for r in &reports[i * rtts.len()..(i + 1) * rtts.len()] {
            write!(out, " {:>8.2}/{:>5.0}ms", r.utilization, r.qdelay_ms.p95).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_normalizes_to_abc() {
        let t = table1(Scale::Fast);
        // the ABC row must read 1.00 / 1.00
        let abc_line = t.lines().find(|l| l.starts_with("ABC")).unwrap();
        assert!(abc_line.contains("1.00"), "{abc_line}");
    }

    #[test]
    fn fig8_flags_abc_outside_frontier() {
        let f = fig8(Scale::Fast);
        assert!(f.contains("Fig 8a"));
        assert!(f.contains("Fig 8c"));
        // ABC should be outside the non-ABC frontier on at least one panel
        assert!(f.contains("OUTSIDE"), "{f}");
    }
}
