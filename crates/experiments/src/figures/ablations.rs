//! ABC design ablations: Fig. 2 (dequeue vs enqueue feedback), Fig. 3
//! (additive increase and fairness), §6.6 PK-ABC, §6.5 Jain sweep, and the
//! deterministic-vs-probabilistic marking comparison (Algorithm 1).

use super::Scale;
use crate::report::sparkline;
use crate::scenario::{CellScenario, LinkSpec};
use crate::scheme::Scheme;
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use std::fmt::Write;

/// Fig. 2: computing f(t) from the enqueue rate roughly doubles the 95th
/// percentile queuing delay relative to ABC's dequeue-rate rule.
pub fn fig2(scale: Scale) -> String {
    let trace = cellular::builtin("Verizon2").unwrap();
    let dur = scale.secs(120, 30, 2);
    let mut out = String::new();
    writeln!(out, "# Fig 2 — feedback basis (dequeue vs enqueue rate)").unwrap();
    let mut results = Vec::new();
    for (name, scheme) in [
        ("dequeue (ABC)", Scheme::Abc),
        ("enqueue", Scheme::AbcEnqueue),
    ] {
        let mut sc = CellScenario::new(scheme, LinkSpec::Trace(trace.clone()));
        sc.duration = dur;
        let r = sc.run();
        writeln!(
            out,
            "{:<16} util {:>5.1}%  qdelay p50/p95 {:>6.0}/{:>6.0} ms",
            name,
            r.utilization * 100.0,
            r.qdelay_ms.p50,
            r.qdelay_ms.p95
        )
        .unwrap();
        results.push(r.qdelay_ms.p95);
    }
    writeln!(
        out,
        "enqueue/dequeue 95p queuing-delay ratio: {:.2}x (paper: ~2x)",
        results[1] / results[0].max(1e-9)
    )
    .unwrap();
    out
}

/// Fig. 3: five staggered ABC flows on a 24 Mbit/s link, with and without
/// the additive-increase term of Eq. 3.
pub fn fig3(scale: Scale) -> String {
    let dur_s = scale.pick(250u64, 100, 2);
    let stagger_s = dur_s / 10; // join every stagger, leave symmetric
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 3 — fairness among five staggered ABC flows (24 Mbit/s)"
    )
    .unwrap();
    for (panel, scheme) in [("a (no AI)", Scheme::AbcNoAi), ("b (with AI)", Scheme::Abc)] {
        let mut sc = CellScenario::new(scheme, LinkSpec::Constant(Rate::from_mbps(24.0)));
        sc.n_flows = 5;
        sc.duration = SimDuration::from_secs(dur_s);
        sc.stagger = SimDuration::from_secs(stagger_s);
        sc.stagger_departures = true; // flows also leave one by one (Fig. 3)
        sc.warmup = SimDuration::ZERO;
        let mut b = sc.build();
        b.run_to_end();
        let hub = b.hub.clone();
        let report = b.finish();
        writeln!(out, "\n## Fig 3{panel}").unwrap();
        let hubref = hub.borrow();
        for i in 1..=5u32 {
            let series = hubref.throughput_series_mbps(netsim::packet::FlowId(i));
            writeln!(out, "flow {i}: {}", sparkline(&series, 60)).unwrap();
        }
        // fairness while all five are active (middle fifth of the run)
        let mid_lo = dur_s as f64 * 0.45;
        let mid_hi = dur_s as f64 * 0.55;
        let tputs: Vec<f64> = (1..=5u32)
            .map(|i| {
                let s = hubref.throughput_series_mbps(netsim::packet::FlowId(i));
                let pts: Vec<f64> = s
                    .iter()
                    .filter(|(t, _)| *t >= mid_lo && *t < mid_hi)
                    .map(|(_, v)| *v)
                    .collect();
                pts.iter().sum::<f64>() / pts.len().max(1) as f64
            })
            .collect();
        let jain = netsim::stats::jain_index(&tputs);
        writeln!(
            out,
            "all-active Jain index {jain:.3}   per-flow Mbit/s {:?}",
            tputs
                .iter()
                .map(|x| (x * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        )
        .unwrap();
        let _ = report;
    }
    out
}

/// §6.6: PK-ABC — the router control law sees µ(t + RTT) from the trace
/// oracle instead of µ(t).
pub fn pk_abc(scale: Scale) -> String {
    let trace = cellular::builtin("Verizon2").unwrap();
    let dur = scale.secs(120, 30, 2);
    let mut out = String::new();
    writeln!(out, "# PK-ABC — perfect future capacity knowledge (§6.6)").unwrap();
    for (name, look) in [
        ("ABC", None),
        ("PK-ABC", Some(SimDuration::from_millis(100))),
    ] {
        let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Trace(trace.clone()));
        sc.duration = dur;
        sc.oracle_lookahead = look;
        let r = sc.run();
        writeln!(
            out,
            "{:<8} util {:>5.1}%  qdelay p95 {:>6.1} ms",
            name,
            r.utilization * 100.0,
            r.qdelay_ms.p95
        )
        .unwrap();
    }
    out
}

/// §6.5: Jain fairness index for 2..32 competing ABC flows on a 24 Mbit/s
/// wired link (paper: within 5% of 1 in every case).
pub fn jain(scale: Scale) -> String {
    let counts: &[u32] = if scale.reduced() {
        &[2, 8]
    } else {
        &[2, 4, 8, 16, 32]
    };
    let mut out = String::new();
    writeln!(
        out,
        "# §6.5 — Jain index across competing ABC flows (24 Mbit/s, 60 s)"
    )
    .unwrap();
    for &n in counts {
        let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(24.0)));
        sc.n_flows = n;
        sc.duration = scale.secs(120, 60, 2);
        sc.warmup = scale.secs(60, 20, 0);
        let r = sc.run();
        writeln!(out, "{n:>3} flows: Jain {:.4}", r.jain).unwrap();
    }
    out
}

/// Algorithm 1 ablation: deterministic token bucket vs probabilistic
/// marking. The deterministic marker spaces accelerates evenly, which
/// shows up as a lower coefficient of variation of the inter-accelerate
/// gap and (slightly) calmer queues.
pub fn marking(scale: Scale) -> String {
    use abc_core::router::{AbcQdisc, AbcRouterConfig, MarkingMode};
    use netsim::packet::{Ecn, FlowId, NodeId, Packet, Route};
    use netsim::queue::Qdisc;

    let n = scale.pick(50_000u64, 5_000, 1_000);
    let mut out = String::new();
    writeln!(
        out,
        "# Algorithm 1 ablation — deterministic vs probabilistic marking"
    )
    .unwrap();
    for (name, mode) in [
        ("deterministic", MarkingMode::Deterministic),
        ("probabilistic", MarkingMode::Probabilistic),
    ] {
        let mut q = AbcQdisc::new(AbcRouterConfig {
            marking: mode,
            ..Default::default()
        });
        q.on_capacity(Rate::from_mbps(12.0), SimTime::ZERO);
        let mut gaps = Vec::new();
        let mut last_accel: Option<u64> = None;
        for seq in 0..n {
            let t = SimTime::ZERO + SimDuration::from_millis(seq);
            let pkt = Packet {
                flow: FlowId(0),
                seq,
                size: 1500,
                ecn: Ecn::Accelerate,
                feedback: netsim::packet::Feedback::None,
                abc_capable: true,
                sent_at: t,
                retransmit: false,
                ack: None,
                route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
                hop: 0,
                enqueued_at: t,
            };
            q.enqueue(Box::new(pkt), t);
            let outp = q.dequeue(t).unwrap();
            if outp.ecn == Ecn::Accelerate {
                if let Some(prev) = last_accel {
                    gaps.push((seq - prev) as f64);
                }
                last_accel = Some(seq);
            }
        }
        let s = netsim::stats::summarize_in_place(&mut gaps);
        writeln!(
            out,
            "{:<14} accel fraction {:>5.3}  inter-accel gap mean {:>4.2} pkts, cv {:>4.2}",
            name,
            1.0 / s.mean,
            s.mean,
            s.std_dev / s.mean
        )
        .unwrap();
    }
    writeln!(
        out,
        "(lower cv = smoother accel spacing = less bursty senders)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_enqueue_worsens_tail_delay() {
        let f = fig2(Scale::Fast);
        let ratio: f64 = f
            .lines()
            .find(|l| l.contains("ratio"))
            .and_then(|l| l.split("ratio:").nth(1))
            .and_then(|x| x.trim().split('x').next())
            .and_then(|x| x.trim().parse().ok())
            .unwrap_or_else(|| panic!("unparseable fig2 output:\n{f}"));
        assert!(ratio > 1.2, "enqueue basis should hurt: ratio {ratio}");
    }

    #[test]
    fn fig3_ai_improves_fairness() {
        let f = fig3(Scale::Fast);
        let jains: Vec<f64> = f
            .lines()
            .filter(|l| l.contains("Jain index"))
            .map(|l| {
                l.split("Jain index")
                    .nth(1)
                    .unwrap()
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(jains.len(), 2);
        assert!(
            jains[1] > jains[0],
            "AI should improve fairness: noAI {} vs AI {}",
            jains[0],
            jains[1]
        );
        assert!(jains[1] > 0.85, "with-AI Jain {}", jains[1]);
    }

    #[test]
    fn marking_deterministic_is_smoother() {
        let m = marking(Scale::Fast);
        let cvs: Vec<f64> = m
            .lines()
            .filter(|l| l.starts_with("deterministic") || l.starts_with("probabilistic"))
            .map(|l| l.rsplit("cv").next().unwrap().trim().parse().unwrap())
            .collect();
        assert_eq!(cvs.len(), 2);
        assert!(
            cvs[0] < cvs[1],
            "deterministic cv {} should be below probabilistic {}",
            cvs[0],
            cvs[1]
        );
    }
}
