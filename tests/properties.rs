//! Cross-crate property-based tests: invariants of the substrate and the
//! ABC mechanisms under arbitrary inputs.

use abc_repro::abc_core::router::{AbcQdisc, AbcRouterConfig, MarkingMode};
use abc_repro::abc_core::sender::AbcSender;
use abc_repro::abc_core::SpaceSaving;
use abc_repro::netsim::flow::{AckEvent, CongestionControl};
use abc_repro::netsim::link::{TraceLink, Transmitter};
use abc_repro::netsim::packet::{Ecn, Feedback, FlowId, NodeId, Packet, Route};
use abc_repro::netsim::queue::Qdisc;
use abc_repro::netsim::rate::Rate;
use abc_repro::netsim::stats::{percentile, WindowedRate};
use abc_repro::netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn pkt(seq: u64, ecn: Ecn) -> Box<Packet> {
    Box::new(Packet {
        flow: FlowId(0),
        seq,
        size: 1500,
        ecn,
        feedback: Feedback::None,
        abc_capable: true,
        sent_at: SimTime::ZERO,
        retransmit: false,
        ack: None,
        route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
        hop: 0,
        enqueued_at: SimTime::ZERO,
    })
}

proptest! {
    /// Trace links: completion times are monotone for monotone requests,
    /// never precede the request, and land on opportunity instants.
    #[test]
    fn trace_link_completions_are_monotone(
        gaps in proptest::collection::vec(0u64..5_000_000, 1..200),
        sizes in proptest::collection::vec(40u32..3000, 1..200),
    ) {
        let opps: Vec<SimDuration> =
            (0..1000).map(SimDuration::from_millis).collect();
        let mut link = TraceLink::new(opps, SimDuration::from_secs(1));
        let mut now = SimTime::ZERO;
        let mut last_done = SimTime::ZERO;
        for (g, s) in gaps.iter().zip(sizes.iter().cycle()) {
            // next request happens after the previous completion or later
            now = last_done.max(now + SimDuration::from_nanos(*g));
            let done = link.schedule_tx(now, *s);
            prop_assert!(done >= now, "completion before request");
            prop_assert!(done >= last_done, "completions went backwards");
            last_done = done;
        }
    }

    /// The ABC sender's window never collapses below 1 packet and never
    /// exceeds the 2×-in-flight cap, whatever feedback arrives.
    #[test]
    fn abc_sender_window_bounds(
        feedback in proptest::collection::vec(0u8..4, 1..500),
        inflight in proptest::collection::vec(0usize..500, 1..500),
    ) {
        let mut s = AbcSender::new();
        for (f, infl) in feedback.iter().zip(inflight.iter().cycle()) {
            let ecn = match f {
                0 => Ecn::Accelerate,
                1 => Ecn::Brake,
                2 => Ecn::Ce,
                _ => Ecn::NotEct,
            };
            s.on_ack(&AckEvent {
                now: SimTime::ZERO + SimDuration::from_secs(1),
                rtt: Some(SimDuration::from_millis(100)),
                min_rtt: SimDuration::from_millis(100),
                srtt: SimDuration::from_millis(100),
                acked_bytes: 1500,
                ecn_echo: ecn,
                feedback: Feedback::None,
                inflight_pkts: *infl,
                delivery_rate: Rate::ZERO,
                one_way_delay: SimDuration::from_millis(50),
            });
            prop_assert!(s.cwnd_pkts() >= 1.0, "window collapsed: {}", s.cwnd_pkts());
            let cap = (2.0 * (*infl + 1).max(2) as f64).max(4.0);
            prop_assert!(
                s.w_abc() <= cap + 1e-9,
                "w_abc {} above cap {cap}",
                s.w_abc()
            );
        }
    }

    /// Algorithm 1's token bucket: the token never leaves [0, tokenLimit],
    /// and the router never promotes a brake back to accelerate.
    #[test]
    fn abc_router_token_and_demotion_invariants(
        ecns in proptest::collection::vec(0u8..3, 1..2000),
        mu_mbps in 0.1f64..50.0,
    ) {
        let cfg = AbcRouterConfig::default();
        let mut q = AbcQdisc::new(cfg);
        q.on_capacity(Rate::from_mbps(mu_mbps), SimTime::ZERO);
        for (i, e) in ecns.iter().enumerate() {
            let t = SimTime::ZERO + SimDuration::from_millis(i as u64);
            let ecn_in = match e {
                0 => Ecn::Accelerate,
                1 => Ecn::Brake,
                _ => Ecn::NotEct,
            };
            q.enqueue(pkt(i as u64, ecn_in), t);
            let out = q.dequeue(t).unwrap();
            prop_assert!(q.token() >= 0.0 && q.token() <= cfg.token_limit + 1e-9,
                "token {} out of range", q.token());
            match ecn_in {
                Ecn::Accelerate => prop_assert!(
                    matches!(out.ecn, Ecn::Accelerate | Ecn::Brake),
                    "accel may only stay or demote"
                ),
                other => prop_assert_eq!(out.ecn, other, "non-accel must pass unchanged"),
            }
        }
    }

    /// Over any long window, the accelerate share stays within the range
    /// the marking fraction allows plus the token-bucket slack.
    #[test]
    fn accel_share_bounded_by_marking_fraction(seed in 0u64..1000) {
        let cfg = AbcRouterConfig {
            marking: MarkingMode::Deterministic,
            seed,
            ..Default::default()
        };
        let mut q = AbcQdisc::new(cfg);
        q.on_capacity(Rate::from_mbps(12.0), SimTime::ZERO);
        let n = 2_000u64;
        let mut accel = 0u64;
        for i in 0..n {
            let t = SimTime::ZERO + SimDuration::from_millis(i);
            q.enqueue(pkt(i, Ecn::Accelerate), t);
            if q.dequeue(t).unwrap().ecn == Ecn::Accelerate {
                accel += 1;
            }
        }
        // steady state f = 0.5·η = 0.49; allow warm-up & bucket slack
        let share = accel as f64 / n as f64;
        prop_assert!(share < 0.49 + 0.05, "share {share}");
    }

    /// Percentile is monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone(mut v in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let x = percentile(&v, p);
            prop_assert!(x >= last - 1e-9);
            prop_assert!(x >= v[0] - 1e-9 && x <= v[v.len() - 1] + 1e-9);
            last = x;
        }
    }

    /// The windowed-rate estimator never reports more bytes than were
    /// recorded, and expires everything once the window passes.
    #[test]
    fn windowed_rate_conservation(
        events in proptest::collection::vec((0u64..1_000_000u64, 1u64..10_000), 1..100)
    ) {
        let mut sorted = events.clone();
        sorted.sort();
        let mut wr = WindowedRate::new(SimDuration::from_millis(100));
        let mut total = 0u64;
        let mut last = SimTime::ZERO;
        for (t_us, bytes) in sorted {
            let t = SimTime::ZERO + SimDuration::from_micros(t_us);
            wr.record(t, bytes);
            total += bytes;
            last = t;
        }
        prop_assert!(wr.bytes_in_window(last) <= total);
        let far = last + SimDuration::from_secs(10);
        prop_assert_eq!(wr.bytes_in_window(far), 0);
    }

    /// Space-Saving's guaranteed counts never exceed true counts, and true
    /// heavy hitters are always present.
    #[test]
    fn space_saving_guarantees(stream in proptest::collection::vec(0u32..50, 100..2000)) {
        let mut ss = SpaceSaving::new(8);
        let mut truth = std::collections::HashMap::new();
        for &f in &stream {
            ss.record(FlowId(f), 1);
            *truth.entry(f).or_insert(0u64) += 1;
        }
        for e in ss.top() {
            let true_count = truth.get(&e.flow.0).copied().unwrap_or(0);
            prop_assert!(
                e.count - e.error <= true_count,
                "guaranteed count exceeds truth for {:?}",
                e.flow
            );
            prop_assert!(e.count >= true_count, "sketch must overestimate");
        }
        // any flow with count > N/(k+1) is guaranteed monitored
        let n = stream.len() as u64;
        let threshold = n / 9;
        for (&f, &c) in &truth {
            if c > threshold {
                prop_assert!(
                    ss.top().iter().any(|e| e.flow == FlowId(f)),
                    "heavy hitter {f} missing (count {c} > {threshold})"
                );
            }
        }
    }

    /// ECN bits survive an arbitrary chain of ABC routers with only
    /// accel→brake demotions (the multi-bottleneck rule).
    #[test]
    fn multi_router_chain_only_demotes(
        mus in proptest::collection::vec(0.1f64..30.0, 1..6),
    ) {
        let mut routers: Vec<AbcQdisc> = mus
            .iter()
            .map(|&m| {
                let mut q = AbcQdisc::new(AbcRouterConfig::default());
                q.on_capacity(Rate::from_mbps(m), SimTime::ZERO);
                q
            })
            .collect();
        for i in 0..500u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(i);
            let mut p = pkt(i, Ecn::Accelerate);
            let mut seen_brake = false;
            for r in routers.iter_mut() {
                r.enqueue(p.clone(), t);
                p = r.dequeue(t).unwrap();
                if seen_brake {
                    prop_assert_eq!(p.ecn, Ecn::Brake, "brake must stick");
                }
                seen_brake = p.ecn == Ecn::Brake;
            }
        }
    }
}
