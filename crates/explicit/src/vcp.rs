//! VCP — Variable-structure Congestion control Protocol [Xia et al.,
//! SIGCOMM 2005]. The router classifies its load factor into three regions
//! encoded in two bits; senders switch between multiplicative increase,
//! additive increase, and multiplicative decrease. The ABC paper's point
//! (§7): with fixed MI/MD constants it takes VCP ~12 RTTs to double its
//! rate, far too slow for wireless variation. Constants per the paper:
//! ξ = 0.0625, α = 1.0, β = 0.875, κ = 0.25, load interval 200 ms.

use netsim::flow::{AckEvent, CongestionControl};
use netsim::packet::{Feedback, Packet, VcpLoad};
use netsim::queue::{Qdisc, QdiscStats};
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
pub struct VcpConfig {
    /// Load-factor measurement interval t_ρ.
    pub interval: SimDuration,
    /// Queue weight κ in the load factor.
    pub kappa: f64,
    /// Target utilization γ.
    pub gamma: f64,
    pub buffer_pkts: usize,
}

impl Default for VcpConfig {
    fn default() -> Self {
        VcpConfig {
            interval: SimDuration::from_millis(200),
            kappa: 0.25,
            gamma: 0.98,
            buffer_pkts: 250,
        }
    }
}

pub struct VcpQdisc {
    cfg: VcpConfig,
    queue: VecDeque<Box<Packet>>,
    bytes: u64,
    capacity: Rate,
    arrived_bytes: f64,
    interval_start: Option<SimTime>,
    load: VcpLoad,
    load_factor: f64,
    stats: QdiscStats,
}

impl VcpQdisc {
    pub fn new(cfg: VcpConfig) -> Self {
        VcpQdisc {
            cfg,
            queue: VecDeque::new(),
            bytes: 0,
            capacity: Rate::ZERO,
            arrived_bytes: 0.0,
            interval_start: None,
            load: VcpLoad::Low,
            load_factor: 0.0,
            stats: QdiscStats::default(),
        }
    }

    pub fn load_factor(&self) -> f64 {
        self.load_factor
    }

    pub fn load(&self) -> VcpLoad {
        self.load
    }

    fn maybe_update(&mut self, now: SimTime) {
        let start = *self.interval_start.get_or_insert(now);
        if now.since(start) < self.cfg.interval {
            return;
        }
        self.interval_start = Some(now);
        if self.capacity.is_zero() {
            self.load = VcpLoad::Overload;
            self.load_factor = f64::INFINITY;
        } else {
            let t = self.cfg.interval.as_secs_f64();
            let lambda = self.arrived_bytes * 8.0; // bits this interval
            let q_bits = self.bytes as f64 * 8.0;
            let rho =
                (lambda + self.cfg.kappa * q_bits) / (self.cfg.gamma * self.capacity.bps() * t);
            self.load_factor = rho;
            self.load = if rho < 0.8 {
                VcpLoad::Low
            } else if rho <= 1.0 {
                VcpLoad::High
            } else {
                VcpLoad::Overload
            };
        }
        self.arrived_bytes = 0.0;
    }
}

impl Qdisc for VcpQdisc {
    netsim::impl_qdisc_downcast!();

    fn enqueue(&mut self, mut pkt: Box<Packet>, now: SimTime) -> bool {
        self.maybe_update(now);
        if self.queue.len() >= self.cfg.buffer_pkts {
            self.stats.dropped_pkts += 1;
            return false;
        }
        self.arrived_bytes += pkt.size as f64;
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        self.maybe_update(now);
        let mut pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        if let Feedback::Vcp(current) = pkt.feedback {
            // stamp the *worst* load along the path (Low < High < Overload)
            let worst = match (current, self.load) {
                (VcpLoad::Overload, _) | (_, VcpLoad::Overload) => VcpLoad::Overload,
                (VcpLoad::High, _) | (_, VcpLoad::High) => VcpLoad::High,
                _ => VcpLoad::Low,
            };
            pkt.feedback = Feedback::Vcp(worst);
        }
        self.stats.dequeued_pkts += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        Some(pkt)
    }

    fn peek_size(&self) -> Option<u32> {
        self.queue.front().map(|p| p.size)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn on_capacity(&mut self, rate: Rate, _now: SimTime) {
        self.capacity = rate;
    }

    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.queue.front().map(|p| now.since(p.enqueued_at))
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

/// VCP endpoint constants (per the ABC paper's Appendix D).
const XI: f64 = 0.0625; // MI factor per RTT
const AI_ALPHA: f64 = 1.0; // packets per RTT
const MD_BETA: f64 = 0.875;

pub struct VcpSender {
    cwnd: f64,
    /// Worst load signal observed in the current RTT round.
    round_worst: VcpLoad,
    round_end: SimTime,
    srtt: SimDuration,
}

impl VcpSender {
    pub fn new() -> Self {
        VcpSender {
            cwnd: 2.0,
            round_worst: VcpLoad::Low,
            round_end: SimTime::ZERO,
            srtt: SimDuration::from_millis(100),
        }
    }
}

impl Default for VcpSender {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for VcpSender {
    fn name(&self) -> &'static str {
        "vcp"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if !ev.srtt.is_zero() {
            self.srtt = ev.srtt;
        }
        if let Feedback::Vcp(load) = ev.feedback {
            self.round_worst = match (self.round_worst, load) {
                (VcpLoad::Overload, _) | (_, VcpLoad::Overload) => VcpLoad::Overload,
                (VcpLoad::High, _) | (_, VcpLoad::High) => VcpLoad::High,
                _ => VcpLoad::Low,
            };
        }
        if ev.now >= self.round_end {
            match self.round_worst {
                VcpLoad::Low => self.cwnd *= 1.0 + XI,
                VcpLoad::High => self.cwnd += AI_ALPHA,
                VcpLoad::Overload => self.cwnd *= MD_BETA,
            }
            self.cwnd = self.cwnd.max(1.0);
            self.round_worst = VcpLoad::Low;
            self.round_end = ev.now + self.srtt;
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.cwnd = (self.cwnd * MD_BETA).max(1.0);
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.cwnd = 2.0;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }

    fn outgoing_feedback(&mut self, _now: SimTime) -> Feedback {
        Feedback::Vcp(VcpLoad::Low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, FlowId, NodeId, Route};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn vcp_pkt(seq: u64) -> Box<Packet> {
        Box::new(Packet {
            flow: FlowId(0),
            seq,
            size: 1500,
            ecn: Ecn::NotEct,
            feedback: Feedback::Vcp(VcpLoad::Low),
            abc_capable: false,
            sent_at: SimTime::ZERO,
            retransmit: false,
            ack: None,
            route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
            hop: 0,
            enqueued_at: SimTime::ZERO,
        })
    }

    #[test]
    fn load_regions_classify_correctly() {
        let mut q = VcpQdisc::new(VcpConfig::default());
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        // 50% load: 1 pkt per 2 ms for 400 ms
        let mut seq = 0;
        for t in (0..400u64).step_by(2) {
            q.enqueue(vcp_pkt(seq), at(t));
            seq += 1;
            q.dequeue(at(t));
        }
        assert_eq!(q.load(), VcpLoad::Low);
        assert!(q.load_factor() < 0.8, "ρ = {}", q.load_factor());

        // ~100% load for 400 ms
        for t in 400..800u64 {
            q.enqueue(vcp_pkt(seq), at(t));
            seq += 1;
            q.dequeue(at(t));
        }
        assert!(
            q.load() == VcpLoad::High || q.load() == VcpLoad::Overload,
            "ρ = {}",
            q.load_factor()
        );

        // 200% offered, queue building
        for t in 800..1200u64 {
            q.enqueue(vcp_pkt(seq), at(t));
            seq += 1;
            q.enqueue(vcp_pkt(seq), at(t));
            seq += 1;
            q.dequeue(at(t));
        }
        assert_eq!(q.load(), VcpLoad::Overload);
    }

    fn ev(now_ms: u64, load: VcpLoad) -> AckEvent {
        AckEvent {
            now: at(now_ms),
            rtt: Some(SimDuration::from_millis(100)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(100),
            acked_bytes: 1500,
            ecn_echo: Ecn::NotEct,
            feedback: Feedback::Vcp(load),
            inflight_pkts: 5,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(50),
        }
    }

    #[test]
    fn mi_ai_md_transitions() {
        let mut s = VcpSender::new();
        s.cwnd = 16.0;
        // Low → MI once per RTT
        s.on_ack(&ev(100, VcpLoad::Low));
        assert!((s.cwnd_pkts() - 17.0).abs() < 1e-9); // 16·1.0625
                                                      // within the same round nothing more happens
        s.on_ack(&ev(150, VcpLoad::Low));
        assert!((s.cwnd_pkts() - 17.0).abs() < 1e-9);
        // next round: High → AI
        s.on_ack(&ev(201, VcpLoad::High));
        assert!((s.cwnd_pkts() - 18.0).abs() < 1e-9);
        // next round: Overload → MD
        s.on_ack(&ev(302, VcpLoad::Overload));
        assert!((s.cwnd_pkts() - 18.0 * 0.875).abs() < 1e-9);
    }

    #[test]
    fn doubling_takes_about_twelve_rtts() {
        // §7's observation: (1.0625)^n = 2 → n ≈ 11.4
        let mut s = VcpSender::new();
        s.cwnd = 10.0;
        let mut rtts = 0;
        let mut t = 100;
        while s.cwnd_pkts() < 20.0 {
            s.on_ack(&ev(t, VcpLoad::Low));
            t += 101;
            rtts += 1;
            assert!(rtts < 20, "runaway");
        }
        assert!((11..=13).contains(&rtts), "took {rtts} RTTs");
    }

    #[test]
    fn worst_load_wins_on_path() {
        let mut q = VcpQdisc::new(VcpConfig::default());
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        q.load = VcpLoad::High;
        let mut p = vcp_pkt(0);
        p.feedback = Feedback::Vcp(VcpLoad::Overload); // upstream said worse
        q.enqueue(p, at(0));
        match q.dequeue(at(0)).unwrap().feedback {
            Feedback::Vcp(l) => assert_eq!(l, VcpLoad::Overload),
            _ => panic!(),
        }
    }
}
