//! Fluid-model stability analysis (§3.1.4, Theorem 3.1, Appendix A).
//!
//! The queuing-delay dynamics of a single ABC link with N flows reduce to
//! the delay-differential equation
//!
//! ```text
//! ẋ(t) = A − (1/δ)·(x(t−τ) − dt)⁺,   A = (η−1) + N/(µ·l)
//! ```
//!
//! (µ in packets/s, `l` the seconds-per-packet additive increase). Yorke's
//! condition gives global asymptotic stability iff δ > ⅔·τ. This module
//! computes the criterion, the fixed points, and integrates the fluid model
//! so the stability bench can sweep δ/τ and exhibit the boundary.

use netsim::rate::Rate;
use netsim::time::SimDuration;

/// Theorem 3.1: ABC is globally asymptotically stable if δ > ⅔·τ.
pub fn is_stable(delta: SimDuration, max_rtt: SimDuration) -> bool {
    3 * delta.as_nanos() > 2 * max_rtt.as_nanos()
}

/// The constant `A` of the fluid model.
///
/// * `eta` — target utilization;
/// * `n_flows` — number of ABC flows;
/// * `mu` — link capacity;
/// * `pkt_bytes` — packet size (converts µ to packets/s);
/// * `ai_interval` — seconds per +1-packet additive increase (`l`; one RTT
///   for the Eq. 3 sender).
pub fn fluid_a(eta: f64, n_flows: u32, mu: Rate, pkt_bytes: u32, ai_interval: f64) -> f64 {
    assert!(ai_interval > 0.0);
    let mu_pps = mu.bps() / (8.0 * pkt_bytes as f64);
    assert!(mu_pps > 0.0, "zero capacity");
    (eta - 1.0) + n_flows as f64 / (mu_pps * ai_interval)
}

/// Fixed point of the queuing delay: `x* = A·δ + dt` when `A > 0`, else 0.
pub fn fixed_point_delay(a: f64, delta: SimDuration, dt: SimDuration) -> SimDuration {
    if a <= 0.0 {
        SimDuration::ZERO
    } else {
        dt + delta.mul_f64(a)
    }
}

/// Result of integrating the fluid model.
#[derive(Debug, Clone)]
pub struct FluidTrace {
    /// (time s, queuing delay s) samples.
    pub samples: Vec<(f64, f64)>,
    /// Largest |x − x*| over the final quarter of the horizon.
    pub residual: f64,
    /// The analytic equilibrium x* the trace should settle at.
    pub fixed_point: f64,
}

/// Integrate `ẋ = A − (1/δ)(x(t−τ) − dt)⁺` by forward Euler with history.
///
/// * `x0` — initial queuing delay (s);
/// * `horizon` — integration length (s);
/// * `step` — Euler step (s).
pub fn integrate_fluid(
    a: f64,
    delta: SimDuration,
    dt: SimDuration,
    tau: SimDuration,
    x0: f64,
    horizon: f64,
    step: f64,
) -> FluidTrace {
    assert!(step > 0.0 && horizon > step);
    let delta_s = delta.as_secs_f64();
    let dt_s = dt.as_secs_f64();
    let tau_s = tau.as_secs_f64();
    let lag = (tau_s / step).round() as usize;
    let n = (horizon / step).ceil() as usize;
    let mut xs = Vec::with_capacity(n + 1);
    xs.push(x0);
    for i in 0..n {
        let delayed = if i >= lag { xs[i - lag] } else { x0 };
        let dx = a - (delayed - dt_s).max(0.0) / delta_s;
        let next = (xs[i] + dx * step).max(0.0);
        xs.push(next);
    }
    let fixed_point = if a <= 0.0 { 0.0 } else { a * delta_s + dt_s };
    let tail_start = n * 3 / 4;
    let residual = xs[tail_start..]
        .iter()
        .map(|x| (x - fixed_point).abs())
        .fold(0.0, f64::max);
    let samples = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 * step, x))
        .collect();
    FluidTrace {
        samples,
        residual,
        fixed_point,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn criterion_boundary() {
        // paper's setting: δ = 133 ms for τ = 100 ms → stable
        assert!(is_stable(ms(133), ms(100)));
        // δ = 50 ms for τ = 100 ms violates δ > 66.7 ms
        assert!(!is_stable(ms(50), ms(100)));
        // boundary: δ = 2τ/3 exactly is NOT stable (strict inequality)
        assert!(!is_stable(
            SimDuration::from_nanos(2_000),
            SimDuration::from_nanos(3_000)
        ));
        assert!(is_stable(
            SimDuration::from_nanos(2_001),
            SimDuration::from_nanos(3_000)
        ));
    }

    #[test]
    fn fluid_a_signs() {
        // η=0.98, many flows on a slow link → A > 0 (standing queue)
        let a_pos = fluid_a(0.98, 50, Rate::from_mbps(12.0), 1500, 0.1);
        assert!(a_pos > 0.0);
        // 1 flow on a fast link → A < 0 (queue drains)
        let a_neg = fluid_a(0.98, 1, Rate::from_mbps(96.0), 1500, 0.1);
        assert!(a_neg < 0.0);
    }

    #[test]
    fn stable_parameters_converge() {
        // δ = 133 ms, τ = 100 ms, A > 0: residual shrinks to ~0
        let a = 0.05;
        let tr = integrate_fluid(a, ms(133), ms(20), ms(100), 0.5, 20.0, 1e-3);
        assert!(
            tr.residual < 1e-3,
            "did not converge: residual {}",
            tr.residual
        );
        assert!((tr.fixed_point - (0.05 * 0.133 + 0.020)).abs() < 1e-9);
    }

    #[test]
    fn unstable_parameters_oscillate() {
        // δ = 20 ms ≪ ⅔·100 ms: sustained oscillation, residual stays large
        let a = 0.05;
        let tr = integrate_fluid(a, ms(20), ms(20), ms(100), 0.5, 20.0, 1e-3);
        assert!(
            tr.residual > 0.01,
            "expected oscillation, residual {}",
            tr.residual
        );
    }

    #[test]
    fn negative_a_drains_queue() {
        let tr = integrate_fluid(-0.1, ms(133), ms(20), ms(100), 0.5, 30.0, 1e-3);
        assert_eq!(tr.fixed_point, 0.0);
        assert!(tr.residual < 1e-6, "queue should empty: {}", tr.residual);
    }

    #[test]
    fn fixed_point_formula() {
        assert_eq!(fixed_point_delay(-1.0, ms(133), ms(20)), SimDuration::ZERO);
        let fp = fixed_point_delay(0.1, ms(133), ms(20));
        assert_eq!(fp, ms(20) + SimDuration::from_micros(13_300));
    }
}
