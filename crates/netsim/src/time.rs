//! Simulation time primitives.
//!
//! All simulation time is integer nanoseconds since the start of the run.
//! Integer time (rather than `f64` seconds) keeps event ordering exact and
//! runs bit-reproducible: two events scheduled for the same instant compare
//! equal and fall back to a deterministic sequence-number tie-break.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

impl SimTime {
    /// The simulation's start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel far in the future (~584 years of simulated time).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// The instant `ns` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant `s` (fractional) seconds after simulation start,
    /// rounded to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimTime");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Seconds since simulation start (lossy above 2⁵³ ns).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds since simulation start (lossy above 2⁵³ ns).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier` is
    /// in the future (callers comparing clocks across nodes never want a
    /// panic on a 1-ns inversion).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self − d`, clamped at the simulation's start instant.
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span (~584 years).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A span of `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// A span of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// A span of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// A span of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// A span of `s` (fractional) seconds, rounded to the nearest
    /// nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid SimDuration: {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// A span of `ms` (fractional) milliseconds, rounded to the nearest
    /// nanosecond.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// The span in whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds (lossy above 2⁵³ ns).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span in milliseconds (lossy above 2⁵³ ns).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True for the empty span.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self − other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The span scaled by a non-negative factor, rounded to the nearest
    /// nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0 && k.is_finite());
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The shorter of the two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The longer of the two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug if `rhs` is later than `self`; use [`SimTime::since`]
    /// for the saturating form.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

/// Ratio of two durations as `f64` (e.g. `x(t)/δ` in ABC's target rate).
impl Div<SimDuration> for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let d = SimDuration::from_millis(133);
        assert_eq!(d.as_nanos(), 133_000_000);
        assert!((d.as_secs_f64() - 0.133).abs() < 1e-12);
        assert!((d.as_millis_f64() - 133.0).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        let u = t + SimDuration::from_millis(500);
        assert_eq!((u - t).as_millis_f64(), 500.0);
        assert_eq!(u.since(t), SimDuration::from_millis(500));
        // saturating in the reverse direction
        assert_eq!(t.since(u), SimDuration::ZERO);
    }

    #[test]
    fn duration_ratio() {
        let x = SimDuration::from_millis(40);
        let delta = SimDuration::from_millis(133);
        assert!((x / delta - 40.0 / 133.0).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(3);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 2); // rounds half up
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(2.0 / 3.0).as_nanos(),
            666_666_667
        );
    }

    #[test]
    fn from_secs_f64_round_trips() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        let d = SimDuration::from_secs_f64(0.000_000_001);
        assert_eq!(d.as_nanos(), 1);
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimDuration::from_secs(1)),
            SimTime::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
    }
}
