//! Integration tests for the protocol-level claims: ECN reinterpretation
//! (§5.1.2), multi-bottleneck minimum-rate selection (§3.1.2), legacy-AQM
//! interop, and robustness to outages.

use abc_repro::experiments::{CellScenario, LinkSpec, Scheme, TwoHopScenario};
use abc_repro::netsim::flow::{Sender, Sink, TrafficSource};
use abc_repro::netsim::link::{ConstantRate, SerialLink};
use abc_repro::netsim::linkqueue::LinkQueue;
use abc_repro::netsim::metrics::new_hub;
use abc_repro::netsim::packet::{FlowId, Route};
use abc_repro::netsim::rate::Rate;
use abc_repro::netsim::sim::Simulator;
use abc_repro::netsim::time::{SimDuration, SimTime};

/// §5.1.2: an ABC flow whose bottleneck is a legacy ECN-marking AQM must
/// fall back to Cubic-like behavior — the CE marks hit `w_nonabc` and the
/// flow stays both safe (no blowup) and productive.
#[test]
fn abc_through_legacy_ecn_aqm_behaves_like_cubic() {
    use abc_repro::aqm::{Codel, CodelConfig};

    let mut sim = Simulator::new();
    let hub = new_hub();
    let link_id = sim.reserve_node();
    let sender_id = sim.reserve_node();
    let sink_id = sim.reserve_node();
    let fwd = Route::new(vec![
        (link_id, SimDuration::from_millis(25)),
        (sink_id, SimDuration::from_millis(25)),
    ]);
    let back = Route::new(vec![(sender_id, SimDuration::from_millis(50))]);
    sim.install_node(
        sink_id,
        Box::new(Sink::new(FlowId(1), back).with_metrics(hub.clone())),
    );
    sim.install_node(
        sender_id,
        Box::new(Sender::new(
            FlowId(1),
            Scheme::Abc.make_cc(),
            fwd,
            TrafficSource::Backlogged,
        )),
    );
    // a CoDel in ECN-marking mode: it CE-marks ABC's ECT-looking packets
    sim.install_node(
        link_id,
        Box::new(
            LinkQueue::new(
                Box::new(Codel::new(CodelConfig {
                    ecn_marking: true,
                    ..Default::default()
                })),
                Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
            )
            .with_metrics("aqm", hub.clone()),
        ),
    );
    let end = SimTime::ZERO + SimDuration::from_secs(40);
    hub.borrow_mut()
        .set_epoch(SimTime::ZERO + SimDuration::from_secs(5));
    sim.run_until(end);
    {
        let lq: &LinkQueue = sim
            .node(link_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        lq.finalize_opportunity(end);
        // the AQM must have CE-marked (ABC traffic is ECT to legacy gear)
        assert!(
            lq.qdisc().stats().ce_marked > 0,
            "legacy AQM never CE-marked ABC traffic"
        );
    }
    let h = hub.borrow();
    let util = h.links["aqm"].utilization();
    assert!(
        util > 0.7,
        "ABC-under-AQM should stay productive: {util:.3}"
    );
    let q = h.links["aqm"].qdelay_summary_ms();
    assert!(
        q.p95 < 100.0,
        "CE feedback must bound the queue: {:.0} ms",
        q.p95
    );
}

/// §3.1.2: with two ABC routers in series, the *fraction of accelerates*
/// the sender sees equals the tighter router's fraction — the demotion
/// rule computes a min over the path.
#[test]
fn two_abc_hops_feedback_is_path_minimum() {
    // tight hop 6 Mbit/s behind a loose 24 Mbit/s hop
    let r = TwoHopScenario::new(
        Scheme::Abc,
        LinkSpec::Constant(Rate::from_mbps(24.0)),
        LinkSpec::Constant(Rate::from_mbps(6.0)),
    )
    .run();
    assert!(
        (r.total_tput_mbps - 5.8).abs() < 0.6,
        "should converge to the 6 Mbit/s hop: {}",
        r.row()
    );
    assert!(r.qdelay_ms.p95 < 60.0, "{}", r.row());

    // reversed order must behave the same
    let r2 = TwoHopScenario::new(
        Scheme::Abc,
        LinkSpec::Constant(Rate::from_mbps(6.0)),
        LinkSpec::Constant(Rate::from_mbps(24.0)),
    )
    .run();
    assert!(
        (r2.total_tput_mbps - r.total_tput_mbps).abs() < 0.8,
        "order should not matter: {} vs {}",
        r.total_tput_mbps,
        r2.total_tput_mbps
    );
}

/// RCP's rate field is also a path minimum: two RCP hops in series must
/// converge to the tighter one without a standing queue at the loose hop.
#[test]
fn rcp_two_hops_takes_min_rate() {
    let r = TwoHopScenario::new(
        Scheme::Rcp,
        LinkSpec::Constant(Rate::from_mbps(24.0)),
        LinkSpec::Constant(Rate::from_mbps(8.0)),
    )
    .run();
    assert!(
        r.total_tput_mbps < 8.5,
        "RCP must not exceed the tight hop: {}",
        r.row()
    );
    assert!(r.total_tput_mbps > 5.0, "RCP under-shot badly: {}", r.row());
}

/// XCP across two hops: the window delta stamped is the minimum, so the
/// flow is governed by the tight hop.
#[test]
fn xcp_two_hops_takes_min_feedback() {
    let r = TwoHopScenario::new(
        Scheme::Xcp,
        LinkSpec::Constant(Rate::from_mbps(8.0)),
        LinkSpec::Constant(Rate::from_mbps(24.0)),
    )
    .run();
    assert!(r.total_tput_mbps < 8.5, "{}", r.row());
    assert!(r.total_tput_mbps > 6.0, "{}", r.row());
}

/// Outage robustness (§6.2 notes the traces include outages): a trace with
/// a multi-second dead zone must not deadlock any scheme; ABC must recover
/// promptly after the link returns.
#[test]
fn abc_survives_outage_and_recovers() {
    // 0-10 s at 12 Mbit/s, 10-13 s dead, 13-30 s at 12 Mbit/s
    let steps = vec![
        (SimTime::ZERO, Rate::from_mbps(12.0)),
        (
            SimTime::ZERO + SimDuration::from_secs(10),
            Rate::from_bps(100.0),
        ),
        (
            SimTime::ZERO + SimDuration::from_secs(13),
            Rate::from_mbps(12.0),
        ),
    ];
    let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Steps(steps));
    sc.duration = SimDuration::from_secs(30);
    sc.warmup = SimDuration::ZERO;
    let mut b = sc.build();
    b.run_to_end();
    let hub = b.hub.clone();
    let _ = b.finish();
    let h = hub.borrow();
    // goodput in the final 10 s should be back near full rate
    let series = h.total_throughput_series_mbps();
    let tail: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t > 16.0 && *t < 29.0)
        .map(|(_, v)| *v)
        .collect();
    let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
    assert!(mean > 9.0, "post-outage goodput {mean:.2} Mbit/s");
}

/// Finite flows complete and report sane completion accounting.
#[test]
fn short_flows_complete() {
    let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)));
    sc.app = TrafficSource::Finite { bytes: 30_000 };
    sc.n_flows = 4;
    sc.duration = SimDuration::from_secs(10);
    sc.warmup = SimDuration::ZERO;
    let mut b = sc.build();
    b.run_to_end();
    let hub = b.hub.clone();
    let _ = b.finish();
    let h = hub.borrow();
    for i in 1..=4u32 {
        let f = &h.flows[&FlowId(i)];
        assert_eq!(f.delivered_bytes, 30_000, "flow {i} incomplete");
    }
}

/// The sink's ECN echo is faithful: an ABC run produces both accelerate
/// and brake echoes at the sender and zero CE (no legacy marker present).
#[test]
fn ecn_echo_faithful_end_to_end() {
    let sc = CellScenario::new(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)));
    let mut b = sc.build();
    b.run_chunk(SimDuration::from_secs(20));
    let s = b.sender(0);
    let st = s.stats();
    assert!(st.accel_acks > 100);
    assert!(st.brake_acks > 100);
    assert_eq!(
        st.accel_acks + st.brake_acks,
        st.acked_pkts,
        "every ABC ACK must carry accel or brake"
    );
}

/// §5.1.2's proxied-network deployment: accelerate on either ECT codepoint,
/// brake via CE, unmodified receivers. The proxied dialect must deliver the
/// same high-utilization/low-delay operation as the NS-bit dialect.
#[test]
fn proxied_ce_dialect_works_end_to_end() {
    use abc_repro::abc_core::router::{AbcQdisc, AbcRouterConfig, EcnDialect};
    use abc_repro::abc_core::sender::{AbcSender, AbcSenderConfig};

    let mut sim = Simulator::new();
    let hub = new_hub();
    let link_id = sim.reserve_node();
    let sender_id = sim.reserve_node();
    let sink_id = sim.reserve_node();
    let fwd = Route::new(vec![
        (link_id, SimDuration::from_millis(25)),
        (sink_id, SimDuration::from_millis(25)),
    ]);
    let back = Route::new(vec![(sender_id, SimDuration::from_millis(50))]);
    sim.install_node(
        sink_id,
        Box::new(Sink::new(FlowId(1), back).with_metrics(hub.clone())),
    );
    sim.install_node(
        sender_id,
        Box::new(Sender::new(
            FlowId(1),
            Box::new(AbcSender::with_config(AbcSenderConfig {
                dialect: EcnDialect::ProxiedCe,
                ..Default::default()
            })),
            fwd,
            TrafficSource::Backlogged,
        )),
    );
    sim.install_node(
        link_id,
        Box::new(
            LinkQueue::new(
                Box::new(AbcQdisc::new(AbcRouterConfig {
                    dialect: EcnDialect::ProxiedCe,
                    ..Default::default()
                })),
                Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
            )
            .with_metrics("bottleneck", hub.clone()),
        ),
    );
    let end = SimTime::ZERO + SimDuration::from_secs(40);
    hub.borrow_mut()
        .set_epoch(SimTime::ZERO + SimDuration::from_secs(5));
    sim.run_until(end);
    {
        let lq: &LinkQueue = sim
            .node(link_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        lq.finalize_opportunity(end);
    }
    let h = hub.borrow();
    let util = h.links["bottleneck"].utilization();
    assert!(util > 0.9, "proxied dialect utilization {util:.3}");
    let q = h.links["bottleneck"].qdelay_summary_ms();
    assert!(
        q.p95 < 60.0,
        "proxied dialect queuing delay {:.0} ms",
        q.p95
    );
}

/// ACK batching (delayed/compressed ACKs) must not destabilize ABC: the
/// per-packet feedback still arrives, just in bursts.
#[test]
fn abc_robust_to_ack_compression() {
    let mut sim = Simulator::new();
    let hub = new_hub();
    let link_id = sim.reserve_node();
    let sender_id = sim.reserve_node();
    let sink_id = sim.reserve_node();
    let fwd = Route::new(vec![
        (link_id, SimDuration::from_millis(25)),
        (sink_id, SimDuration::from_millis(25)),
    ]);
    let back = Route::new(vec![(sender_id, SimDuration::from_millis(50))]);
    sim.install_node(
        sink_id,
        Box::new(
            Sink::new(FlowId(1), back)
                .with_metrics(hub.clone())
                .with_ack_batching(4, SimDuration::from_millis(10)),
        ),
    );
    sim.install_node(
        sender_id,
        Box::new(Sender::new(
            FlowId(1),
            Scheme::Abc.make_cc(),
            fwd,
            TrafficSource::Backlogged,
        )),
    );
    sim.install_node(
        link_id,
        Box::new(
            LinkQueue::new(
                Scheme::Abc.make_qdisc(250),
                Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
            )
            .with_metrics("bottleneck", hub.clone()),
        ),
    );
    let end = SimTime::ZERO + SimDuration::from_secs(40);
    hub.borrow_mut()
        .set_epoch(SimTime::ZERO + SimDuration::from_secs(5));
    sim.run_until(end);
    {
        let lq: &LinkQueue = sim
            .node(link_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        lq.finalize_opportunity(end);
    }
    let h = hub.borrow();
    let util = h.links["bottleneck"].utilization();
    assert!(util > 0.85, "utilization under ACK batching {util:.3}");
}

/// ACK losses on the reverse path (the paper stresses this via trace
/// outages): ABC must keep working with 10% of ACKs dropped.
#[test]
fn abc_robust_to_ack_loss() {
    use abc_repro::netsim::fault::{Impairment, LossyWire};

    let mut sim = Simulator::new();
    let hub = new_hub();
    let link_id = sim.reserve_node();
    let sender_id = sim.reserve_node();
    let sink_id = sim.reserve_node();
    let wire_id = sim.reserve_node();
    let fwd = Route::new(vec![
        (link_id, SimDuration::from_millis(25)),
        (sink_id, SimDuration::from_millis(25)),
    ]);
    // ACKs pass through a lossy wire on the way back
    let back = Route::new(vec![
        (wire_id, SimDuration::from_millis(25)),
        (sender_id, SimDuration::from_millis(25)),
    ]);
    sim.install_node(
        wire_id,
        Box::new(LossyWire::new(0.10, Impairment::Drop, 99)),
    );
    sim.install_node(
        sink_id,
        Box::new(Sink::new(FlowId(1), back).with_metrics(hub.clone())),
    );
    sim.install_node(
        sender_id,
        Box::new(Sender::new(
            FlowId(1),
            Scheme::Abc.make_cc(),
            fwd,
            TrafficSource::Backlogged,
        )),
    );
    sim.install_node(
        link_id,
        Box::new(
            LinkQueue::new(
                Scheme::Abc.make_qdisc(250),
                Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
            )
            .with_metrics("bottleneck", hub.clone()),
        ),
    );
    let end = SimTime::ZERO + SimDuration::from_secs(60);
    hub.borrow_mut()
        .set_epoch(SimTime::ZERO + SimDuration::from_secs(10));
    sim.run_until(end);
    {
        let lq: &LinkQueue = sim
            .node(link_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        lq.finalize_opportunity(end);
    }
    let h = hub.borrow();
    let util = h.links["bottleneck"].utilization();
    assert!(util > 0.75, "utilization under 10% ACK loss: {util:.3}");
    let q = h.links["bottleneck"].qdelay_summary_ms();
    assert!(
        q.p95 < 100.0,
        "queuing delay under ACK loss {:.0} ms",
        q.p95
    );
}
