//! Cellular packet-delivery traces in Mahimahi's format.
//!
//! A trace is a list of timestamps (milliseconds, one per line in the file
//! format) at which the link can deliver one MTU-sized packet. Mahimahi
//! replays the list cyclically; an opportunity that finds the queue empty
//! is wasted. [`CellTrace`] carries the parsed opportunities plus the
//! repeat period and converts into a [`netsim::link::TraceLink`].

use netsim::link::TraceLink;
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// A parsed (or synthesized) cellular trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTrace {
    pub name: String,
    /// Delivery opportunities within one period, sorted.
    pub opportunities: Vec<SimDuration>,
    pub period: SimDuration,
}

/// Errors from parsing a Mahimahi trace.
#[derive(Debug)]
pub enum TraceError {
    Io(std::io::Error),
    Parse { line: usize, content: String },
    Empty,
    Unsorted { line: usize },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::Parse { line, content } => {
                write!(f, "line {line}: not a millisecond timestamp: {content:?}")
            }
            TraceError::Empty => write!(f, "trace has no delivery opportunities"),
            TraceError::Unsorted { line } => write!(f, "line {line}: timestamps out of order"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl CellTrace {
    /// Parse the Mahimahi format: one integer (ms) per line, sorted,
    /// possibly with repeated values (several opportunities in one ms).
    /// The period is the last timestamp rounded up to the next full ms.
    pub fn parse_mahimahi(name: &str, reader: impl Read) -> Result<CellTrace, TraceError> {
        let mut opportunities = Vec::new();
        let mut last: u64 = 0;
        for (i, line) in BufReader::new(reader).lines().enumerate() {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let ms: u64 = t.parse().map_err(|_| TraceError::Parse {
                line: i + 1,
                content: t.to_string(),
            })?;
            if ms < last {
                return Err(TraceError::Unsorted { line: i + 1 });
            }
            last = ms;
            opportunities.push(SimDuration::from_millis(ms));
        }
        if opportunities.is_empty() {
            return Err(TraceError::Empty);
        }
        let period = SimDuration::from_millis(last + 1);
        Ok(CellTrace {
            name: name.to_string(),
            opportunities,
            period,
        })
    }

    /// Serialize back to the Mahimahi line format.
    pub fn write_mahimahi(&self, mut w: impl Write) -> std::io::Result<()> {
        for o in &self.opportunities {
            writeln!(w, "{}", o.as_nanos() / 1_000_000)?;
        }
        Ok(())
    }

    /// Mean capacity over one period, assuming MTU-sized opportunities.
    pub fn mean_rate(&self) -> Rate {
        Rate::from_bytes_per(
            self.opportunities.len() as u64 * netsim::packet::MTU_BYTES as u64,
            self.period,
        )
    }

    /// Capacity averaged over `[t, t+window)`, for plotting µ(t) curves.
    pub fn rate_in_window(&self, t: SimTime, window: SimDuration) -> Rate {
        let period = self.period.as_nanos();
        let count_before = |tn: u64| -> u64 {
            let cycles = tn / period;
            let off = SimDuration::from_nanos(tn % period);
            let within = self.opportunities.partition_point(|&o| o < off) as u64;
            cycles * self.opportunities.len() as u64 + within
        };
        let a = t.as_nanos();
        let b = a + window.as_nanos();
        let n = count_before(b) - count_before(a);
        Rate::from_bytes_per(n * netsim::packet::MTU_BYTES as u64, window)
    }

    /// Build the simulator link for this trace.
    pub fn to_link(&self) -> TraceLink {
        TraceLink::new(self.opportunities.clone(), self.period)
    }

    /// Total duration of one period.
    pub fn duration(&self) -> SimDuration {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let input = "0\n5\n5\n12\n40\n";
        let tr = CellTrace::parse_mahimahi("t", input.as_bytes()).unwrap();
        assert_eq!(tr.opportunities.len(), 5);
        assert_eq!(tr.period, SimDuration::from_millis(41));
        let mut out = Vec::new();
        tr.write_mahimahi(&mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), input);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let input = "# header\n0\n\n10\n";
        let tr = CellTrace::parse_mahimahi("t", input.as_bytes()).unwrap();
        assert_eq!(tr.opportunities.len(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = CellTrace::parse_mahimahi("t", "0\nxyz\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_unsorted() {
        let err = CellTrace::parse_mahimahi("t", "5\n3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Unsorted { line: 2 }));
    }

    #[test]
    fn parse_rejects_empty() {
        let err = CellTrace::parse_mahimahi("t", "# nothing\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Empty));
    }

    #[test]
    fn mean_rate_of_uniform_trace() {
        // one opportunity per ms = 12 Mbit/s
        let body: String = (0..1000).map(|i| format!("{i}\n")).collect();
        let tr = CellTrace::parse_mahimahi("t", body.as_bytes()).unwrap();
        assert!((tr.mean_rate().mbps() - 12.0).abs() < 0.1);
    }

    #[test]
    fn windowed_rate_sees_bursts() {
        // all 100 opportunities in the first 100 ms of a 1 s period
        let body: String = (0..100).map(|i| format!("{i}\n")).collect();
        let mut tr = CellTrace::parse_mahimahi("t", body.as_bytes()).unwrap();
        tr.period = SimDuration::from_secs(1);
        let early = tr.rate_in_window(SimTime::ZERO, SimDuration::from_millis(100));
        let late = tr.rate_in_window(
            SimTime::ZERO + SimDuration::from_millis(500),
            SimDuration::from_millis(100),
        );
        assert!(early.mbps() > 10.0);
        assert_eq!(late.mbps(), 0.0);
    }
}
