//! Fault injection: lossy and corrupting wires.
//!
//! The paper's traces "include outages (highlighting ABC's ability to
//! handle ACK losses)" — this module provides the complementary
//! *random* impairments: a [`LossyWire`] node that drops (or strips
//! feedback from) packets with a seeded probability, insertable anywhere
//! on a route. Inspired by smoltcp's fault-injection examples.

use crate::event::EventKind;
use crate::node::{Context, Node};
use crate::packet::{Ecn, Feedback};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the wire does to unlucky packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Impairment {
    /// Drop the packet entirely.
    Drop,
    /// Deliver it, but wipe its ECN bits to Not-ECT (a middlebox that
    /// bleaches ECN — a real deployment hazard for ABC).
    BleachEcn,
    /// Deliver it, but strip explicit-feedback headers (a middlebox that
    /// drops unknown options — §2's argument against XCP-style headers).
    StripFeedback,
}

/// A wire that impairs packets with probability `p`, forwarding the rest
/// unchanged along their route.
pub struct LossyWire {
    p: f64,
    what: Impairment,
    rng: StdRng,
    /// Packets forwarded untouched.
    pub passed: u64,
    /// Packets hit by the impairment.
    pub impaired: u64,
}

impl LossyWire {
    /// A wire applying `what` with probability `p`, randomized by `seed`.
    pub fn new(p: f64, what: Impairment, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        LossyWire {
            p,
            what,
            rng: StdRng::seed_from_u64(seed),
            passed: 0,
            impaired: 0,
        }
    }
}

impl Node for LossyWire {
    crate::impl_node_downcast!();

    fn handle(&mut self, ctx: &mut Context, event: EventKind) {
        let EventKind::Deliver(mut pkt) = event else {
            return;
        };
        if self.rng.gen::<f64>() < self.p {
            self.impaired += 1;
            match self.what {
                Impairment::Drop => {
                    ctx.recycle(pkt);
                    return;
                }
                Impairment::BleachEcn => pkt.ecn = Ecn::NotEct,
                Impairment::StripFeedback => pkt.feedback = Feedback::None,
            }
        } else {
            self.passed += 1;
        }
        if pkt.next_hop().is_some() {
            ctx.forward_boxed(pkt);
        } else {
            ctx.recycle(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, Packet, Route};
    use crate::sim::Simulator;
    use crate::time::{SimDuration, SimTime};

    struct Counter {
        got: u64,
        ecn_seen: Vec<Ecn>,
    }

    impl Node for Counter {
        crate::impl_node_downcast!();
        fn handle(&mut self, _ctx: &mut Context, ev: EventKind) {
            if let EventKind::Deliver(p) = ev {
                self.got += 1;
                self.ecn_seen.push(p.ecn);
            }
        }
    }

    fn run(p: f64, what: Impairment, n: u64) -> (u64, Vec<Ecn>) {
        let mut sim = Simulator::new();
        let wire_id = sim.reserve_node();
        let sink_id = sim.reserve_node();
        sim.install_node(wire_id, Box::new(LossyWire::new(p, what, 42)));
        sim.install_node(
            sink_id,
            Box::new(Counter {
                got: 0,
                ecn_seen: vec![],
            }),
        );
        struct Src {
            n: u64,
            wire: NodeId,
            sink: NodeId,
        }
        impl Node for Src {
            crate::impl_node_downcast!();
            fn start(&mut self, ctx: &mut Context) {
                for seq in 0..self.n {
                    let route = Route::new(vec![
                        (self.wire, SimDuration::from_millis(1)),
                        (self.sink, SimDuration::from_millis(1)),
                    ]);
                    ctx.forward(Packet {
                        flow: FlowId(1),
                        seq,
                        size: 1500,
                        ecn: Ecn::Accelerate,
                        feedback: Feedback::Rcp { rate_bps: 1e6 },
                        abc_capable: true,
                        sent_at: ctx.now(),
                        retransmit: false,
                        ack: None,
                        route,
                        hop: 0,
                        enqueued_at: ctx.now(),
                    });
                }
            }
            fn handle(&mut self, _: &mut Context, _: EventKind) {}
        }
        sim.add_node(Box::new(Src {
            n,
            wire: wire_id,
            sink: sink_id,
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        let c: &Counter = sim
            .node(sink_id)
            .and_then(|nd| nd.as_any().downcast_ref())
            .unwrap();
        (c.got, c.ecn_seen.clone())
    }

    #[test]
    fn drop_rate_matches_probability() {
        let (got, _) = run(0.2, Impairment::Drop, 10_000);
        let loss = 1.0 - got as f64 / 10_000.0;
        assert!((loss - 0.2).abs() < 0.02, "observed loss {loss}");
    }

    #[test]
    fn zero_probability_is_transparent() {
        let (got, ecn) = run(0.0, Impairment::Drop, 1000);
        assert_eq!(got, 1000);
        assert!(ecn.iter().all(|&e| e == Ecn::Accelerate));
    }

    #[test]
    fn bleaching_wipes_ecn_but_delivers() {
        let (got, ecn) = run(1.0, Impairment::BleachEcn, 1000);
        assert_eq!(got, 1000);
        assert!(ecn.iter().all(|&e| e == Ecn::NotEct));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(0.3, Impairment::Drop, 5000).0;
        let b = run(0.3, Impairment::Drop, 5000).0;
        assert_eq!(a, b);
    }
}
