//! Property tests: every workload generator is a bit-deterministic pure
//! function of its seed/inputs — the foundation of the campaign store's
//! "bit-identical across reruns and pool sizes" guarantee.

use netsim::flow::AppDriver;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use workload::{
    AbrClient, AbrWorkload, ArrivalProcess, RtcSource, RtcWorkload, SizeDist, WebWorkload,
};

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn web_expansion_is_bit_deterministic(
        seed in 0u64..1_000_000,
        per_sec in 1.0f64..200.0,
        secs in 1u64..20,
    ) {
        let w = WebWorkload {
            arrivals: ArrivalProcess::Poisson { per_sec },
            sizes: SizeDist::web_objects(),
        };
        let a = w.expand(seed, SimDuration::from_secs(secs));
        let b = w.expand(seed, SimDuration::from_secs(secs));
        prop_assert_eq!(&a, &b, "same seed diverged");
        for f in &a {
            prop_assert!(f.start < SimTime::ZERO + SimDuration::from_secs(secs));
            prop_assert!(f.bytes >= 1);
        }
        // starts are non-decreasing (arrival process, not a shuffle)
        for w2 in a.windows(2) {
            prop_assert!(w2[0].start <= w2[1].start);
        }
    }

    #[test]
    fn rtc_availability_is_deterministic_and_monotone(
        frame in 1u32..1500,
        interval_ms in 1u64..100,
        probe_ms in proptest::collection::vec(0u64..10_000, 1..20),
    ) {
        let spec = RtcWorkload {
            frame_bytes: frame,
            interval: SimDuration::from_millis(interval_ms),
            deadline: SimDuration::from_millis(100),
        };
        let mut probes = probe_ms.clone();
        probes.sort_unstable();
        let mut s1 = RtcSource::new(spec, SimTime::ZERO);
        let mut s2 = RtcSource::new(spec, SimTime::ZERO);
        let mut prev = 0u64;
        for &ms in &probes {
            let a = s1.available_bytes(at_ms(ms));
            prop_assert_eq!(a, s2.available_bytes(at_ms(ms)));
            prop_assert!(a >= prev, "availability went backwards");
            prop_assert_eq!(a % frame as u64, 0);
            prev = a;
        }
    }

    #[test]
    fn abr_session_is_bit_deterministic(
        dl_ms in 20u64..3_000,
        chunks in 1u64..12,
    ) {
        // replay the same download schedule into two clients
        let run = || {
            let spec = AbrWorkload {
                ladder_kbps: vec![300, 1_000, 3_000],
                chunk: SimDuration::from_secs(1),
                startup_chunks: 1,
                max_buffer: SimDuration::from_secs(6),
                stream: SimDuration::from_secs(chunks),
                safety: 0.8,
            };
            let mut c = AbrClient::new(spec, SimTime::ZERO);
            let mut t = 0u64;
            let mut last = 0u64;
            for _ in 0..200 {
                let avail = c.available_bytes(at_ms(t));
                if avail > last {
                    last = avail;
                    t += dl_ms;
                    c.on_progress(at_ms(t), avail);
                } else if let Some(w) = c.next_wakeup(at_ms(t)) {
                    let w_ms = w.since(SimTime::ZERO).as_nanos() / 1_000_000;
                    if w_ms <= t { break; }
                    t = w_ms;
                } else {
                    break;
                }
            }
            c.finalize(at_ms(t + 10_000));
            c.metrics()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.chunks_downloaded, b.chunks_downloaded);
        prop_assert_eq!(a.mean_bitrate_kbps.to_bits(), b.mean_bitrate_kbps.to_bits());
        prop_assert_eq!(a.rebuffer_ratio.to_bits(), b.rebuffer_ratio.to_bits());
        prop_assert_eq!(a.qoe.to_bits(), b.qoe.to_bits());
        prop_assert_eq!(a.switches, b.switches);
        // sanity: stream bounded by its chunk count
        prop_assert!(a.chunks_downloaded <= a.chunks_total);
        prop_assert!(a.play_s <= chunks as f64 + 1e-9);
    }
}
