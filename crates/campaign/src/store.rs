//! The schema-versioned JSONL results store.
//!
//! Line 1 is a self-describing header (schema id, campaign name, axes
//! with their labels, filter names, point count); every following line is
//! one [`RunRecord`] — the full [`Report`] in the units the paper uses,
//! plus the point's stable ordinal and coordinates — or one structured
//! [`ErrorRecord`] (`{"ordinal":…,"coords":{…},"error":{"kind":…,
//! "message":…}}`) for a point that panicked or tripped the watchdog.
//! Error lines keep the store valid, diffable, and resumable: `--resume`
//! re-attempts exactly the errored ordinals.
//!
//! Serialization is **bit-identical across reruns and worker-pool
//! sizes**: records are written in expansion order, objects keep field
//! order, floats use shortest-round-trip formatting, and nothing
//! wall-clock-dependent is ever written. `NaN` metrics (Wi-Fi topologies
//! report no utilization) serialize as `null` and read back as `NaN`.

use crate::json::{self, Value};
use crate::runner::{ErrorKind, ErrorRecord, PointError, RunRecord};
use crate::spec::{Campaign, Coords};
use experiments::report::{AppReport, Report};
use netsim::metrics::ImpairmentRecord;
use netsim::stats::Summary;
use std::fmt;
use std::path::Path;

/// The store's schema identifier. Bump on any format change so old
/// artifacts fail loudly instead of parsing wrong.
pub const SCHEMA: &str = "abc-campaign/v1";

/// The header line: what produced the records that follow.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreHeader {
    /// The schema id ([`SCHEMA`]) the file was written under.
    pub schema: String,
    /// The campaign name.
    pub campaign: String,
    /// `(axis name, value labels)` in axis order.
    pub axes: Vec<(String, Vec<String>)>,
    /// Names of the campaign's constraint filters.
    pub filters: Vec<String>,
    /// Number of record lines (post-filter points).
    pub points: usize,
}

/// A parsed (or freshly produced) results file.
///
/// ```
/// use campaign::runner::run_campaign;
/// use campaign::store::ResultsStore;
/// use campaign::{Axis, Campaign};
/// use experiments::engine::ScenarioSpec;
/// use experiments::scenario::LinkSpec;
/// use experiments::Scheme;
/// use netsim::rate::Rate;
///
/// let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
///     .duration_secs(1)
///     .warmup_secs(0);
/// let sweep = Campaign::new("doc", base).axis(Axis::seeds(&[1, 2]));
/// let store = ResultsStore::new(&sweep, run_campaign(&sweep, &Default::default()));
///
/// // Serialization round-trips exactly, byte for byte:
/// let text = store.to_jsonl();
/// let back = ResultsStore::from_jsonl(&text).unwrap();
/// assert_eq!(back, store);
/// assert_eq!(back.to_jsonl(), text);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResultsStore {
    /// The self-describing header line.
    pub header: StoreHeader,
    /// One executed record per surviving campaign point, in ordinal
    /// order.
    pub records: Vec<RunRecord>,
    /// Structured errors for points that panicked or tripped the
    /// watchdog, in ordinal order. Empty for a clean run.
    pub errors: Vec<ErrorRecord>,
}

/// Store I/O and format errors.
#[derive(Debug)]
pub enum StoreError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// A line is not valid JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// The underlying JSON error.
        error: json::JsonError,
    },
    /// A line parses but does not describe a header/record correctly.
    Format {
        /// 1-based line number.
        line: usize,
        /// What is malformed.
        message: String,
    },
    /// The file was written under a different schema id.
    Schema {
        /// The schema id the file claims.
        found: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Json { line, error } => write!(f, "line {line}: {error}"),
            StoreError::Format { line, message } => write!(f, "line {line}: {message}"),
            StoreError::Schema { found } => {
                write!(
                    f,
                    "unsupported schema {found:?} (this build reads {SCHEMA:?})"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl ResultsStore {
    /// Bundle a campaign's executed records under its header.
    pub fn new(campaign: &Campaign, records: Vec<RunRecord>) -> ResultsStore {
        ResultsStore {
            header: header_for(campaign, records.len()),
            records,
            errors: Vec::new(),
        }
    }

    /// [`ResultsStore::new`] for a run that produced errors as well as
    /// records: the header counts both (every point left *a* line).
    pub fn with_errors(
        campaign: &Campaign,
        records: Vec<RunRecord>,
        errors: Vec<ErrorRecord>,
    ) -> ResultsStore {
        ResultsStore {
            header: header_for(campaign, records.len() + errors.len()),
            records,
            errors,
        }
    }

    /// Serialize to JSONL: the header line, then every record and error
    /// line interleaved in ordinal order — exactly the bytes a streaming
    /// run writes.
    pub fn to_jsonl(&self) -> String {
        let mut out = render_header(&self.header);
        out.push('\n');
        let mut errs = self.errors.iter().peekable();
        for r in &self.records {
            while errs.peek().is_some_and(|e| e.ordinal < r.ordinal) {
                let e = errs.next().expect("peeked error vanished");
                out.push_str(&render_error_record(e));
                out.push('\n');
            }
            out.push_str(&render_record(r));
            out.push('\n');
        }
        for e in errs {
            out.push_str(&render_error_record(e));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL store, validating the schema id and that every
    /// promised point left a line (a clean record or an error record).
    pub fn from_jsonl(text: &str) -> Result<ResultsStore, StoreError> {
        let store = Self::parse(text, false)?;
        if store.records.len() + store.errors.len() != store.header.points {
            return Err(StoreError::Format {
                line: 1,
                message: format!(
                    "header promises {} records, file has {} (+ {} errors)",
                    store.header.points,
                    store.records.len(),
                    store.errors.len()
                ),
            });
        }
        Ok(store)
    }

    /// Parse a possibly-interrupted store: the executor streams records to
    /// disk chunk by chunk under a header that promises the *full* point
    /// count, so a killed run leaves fewer records than promised — and, if
    /// the kill landed mid-write, a torn final line, which is dropped.
    /// Every complete record still validates; `--resume` re-runs the rest.
    pub fn from_jsonl_allow_partial(text: &str) -> Result<ResultsStore, StoreError> {
        let mut store = Self::parse(text, true)?;
        if store.records.len() + store.errors.len() > store.header.points {
            return Err(StoreError::Format {
                line: 1,
                message: format!(
                    "header promises {} records, file has {} (+ {} errors)",
                    store.header.points,
                    store.records.len(),
                    store.errors.len()
                ),
            });
        }
        store.records.sort_by_key(|r| r.ordinal);
        store.errors.sort_by_key(|e| e.ordinal);
        Ok(store)
    }

    fn parse(text: &str, drop_torn_tail: bool) -> Result<ResultsStore, StoreError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .peekable();
        let (i, first) = lines.next().ok_or(StoreError::Format {
            line: 1,
            message: "empty store (no header line)".into(),
        })?;
        let header = header_from_value(&parse_line(i, first)?, i + 1)?;
        if header.schema != SCHEMA {
            return Err(StoreError::Schema {
                found: header.schema,
            });
        }
        let mut records = Vec::with_capacity(header.points);
        let mut errors = Vec::new();
        while let Some((i, line)) = lines.next() {
            let last = lines.peek().is_none();
            // A line with an "error" key is a failed point; anything else
            // must be a clean record.
            let parsed = parse_line(i, line).and_then(|v| {
                if v.get("error").is_some() {
                    error_record_from_value(&v, i + 1).map(Err)
                } else {
                    record_from_value(&v, i + 1).map(Ok)
                }
            });
            match parsed {
                Ok(Ok(r)) => records.push(r),
                Ok(Err(e)) => errors.push(e),
                Err(_) if drop_torn_tail && last => break,
                Err(e) => return Err(e),
            }
        }
        Ok(ResultsStore {
            header,
            records,
            errors,
        })
    }

    /// Write the store to `path` (exactly [`ResultsStore::to_jsonl`]).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.to_jsonl())?;
        Ok(())
    }

    /// Read and validate a complete store from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<ResultsStore, StoreError> {
        let text = std::fs::read_to_string(path)?;
        ResultsStore::from_jsonl(&text)
    }

    /// [`ResultsStore::load`] for possibly-interrupted stores (see
    /// [`ResultsStore::from_jsonl_allow_partial`]).
    pub fn load_allow_partial(path: impl AsRef<Path>) -> Result<ResultsStore, StoreError> {
        let text = std::fs::read_to_string(path)?;
        ResultsStore::from_jsonl_allow_partial(&text)
    }
}

/// Stitch shard stores (see
/// [`run_campaign_streaming_sharded`](crate::runner::run_campaign_streaming_sharded))
/// back into one. Headers must describe the same sweep — same schema,
/// campaign name, axes, and filters; only `points` may differ — and no
/// ordinal may appear twice. Records come back sorted by ordinal, so
/// merging a complete shard set reproduces an unsharded run's store
/// byte for byte.
pub fn merge_stores(stores: &[ResultsStore]) -> Result<ResultsStore, StoreError> {
    let first = stores
        .first()
        .ok_or_else(|| fmt_err(1, "nothing to merge"))?;
    let mut records: Vec<RunRecord> = Vec::new();
    let mut errors: Vec<ErrorRecord> = Vec::new();
    for (i, s) in stores.iter().enumerate() {
        let h = &s.header;
        if h.schema != first.header.schema
            || h.campaign != first.header.campaign
            || h.axes != first.header.axes
            || h.filters != first.header.filters
        {
            return Err(fmt_err(
                1,
                format!(
                    "store {} describes a different sweep ({:?} vs {:?})",
                    i + 1,
                    h.campaign,
                    first.header.campaign
                ),
            ));
        }
        records.extend(s.records.iter().cloned());
        errors.extend(s.errors.iter().cloned());
    }
    records.sort_by_key(|r| r.ordinal);
    errors.sort_by_key(|e| e.ordinal);
    let mut ordinals: Vec<usize> = records
        .iter()
        .map(|r| r.ordinal)
        .chain(errors.iter().map(|e| e.ordinal))
        .collect();
    ordinals.sort_unstable();
    for w in ordinals.windows(2) {
        if w[0] == w[1] {
            return Err(fmt_err(
                1,
                format!("ordinal {} appears in more than one store", w[0]),
            ));
        }
    }
    Ok(ResultsStore {
        header: StoreHeader {
            points: records.len() + errors.len(),
            ..first.header.clone()
        },
        records,
        errors,
    })
}

/// The header a campaign's store carries. Streaming executors pass the
/// full post-filter expansion count as `points` before any record exists.
pub fn header_for(campaign: &Campaign, points: usize) -> StoreHeader {
    StoreHeader {
        schema: SCHEMA.to_string(),
        campaign: campaign.name.clone(),
        axes: campaign
            .axes
            .iter()
            .map(|a| (a.name.clone(), a.labels()))
            .collect(),
        filters: campaign.filters.iter().map(|f| f.name.clone()).collect(),
        points,
    }
}

/// Render the header line exactly as [`ResultsStore::to_jsonl`] does —
/// for executors that stream a store to disk incrementally.
pub fn render_header(h: &StoreHeader) -> String {
    header_to_value(h).render()
}

/// Render one record line exactly as [`ResultsStore::to_jsonl`] does.
pub fn render_record(r: &RunRecord) -> String {
    record_to_value(r).render()
}

/// Render one structured error line exactly as [`ResultsStore::to_jsonl`]
/// does — for executors that stream a store to disk incrementally.
pub fn render_error_record(e: &ErrorRecord) -> String {
    error_record_to_value(e).render()
}

fn parse_line(idx: usize, line: &str) -> Result<Value, StoreError> {
    json::parse(line).map_err(|error| StoreError::Json {
        line: idx + 1,
        error,
    })
}

fn header_to_value(h: &StoreHeader) -> Value {
    Value::Obj(vec![
        ("schema".into(), Value::str(&h.schema)),
        ("campaign".into(), Value::str(&h.campaign)),
        (
            "axes".into(),
            Value::Arr(
                h.axes
                    .iter()
                    .map(|(name, labels)| {
                        Value::Obj(vec![
                            ("name".into(), Value::str(name)),
                            (
                                "labels".into(),
                                Value::Arr(labels.iter().map(Value::str).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "filters".into(),
            Value::Arr(h.filters.iter().map(Value::str).collect()),
        ),
        ("points".into(), Value::num(h.points as f64)),
    ])
}

fn coords_to_value(c: &Coords) -> Value {
    Value::Obj(
        c.0.iter()
            .map(|(a, l)| (a.clone(), Value::str(l)))
            .collect(),
    )
}

fn record_to_value(r: &RunRecord) -> Value {
    Value::Obj(vec![
        ("ordinal".into(), Value::num(r.ordinal as f64)),
        ("coords".into(), coords_to_value(&r.coords)),
        ("report".into(), report_to_value(&r.report)),
    ])
}

fn error_record_to_value(e: &ErrorRecord) -> Value {
    Value::Obj(vec![
        ("ordinal".into(), Value::num(e.ordinal as f64)),
        ("coords".into(), coords_to_value(&e.coords)),
        (
            "error".into(),
            Value::Obj(vec![
                ("kind".into(), Value::str(e.error.kind.as_str())),
                ("message".into(), Value::str(&e.error.message)),
            ]),
        ),
    ])
}

fn report_to_value(r: &Report) -> Value {
    let mut fields = vec![
        ("scheme".into(), Value::str(&r.scheme)),
        ("utilization".into(), Value::num(r.utilization)),
        ("delay_ms".into(), summary_to_value(&r.delay_ms)),
        ("qdelay_ms".into(), summary_to_value(&r.qdelay_ms)),
        (
            "flow_tputs_mbps".into(),
            Value::Arr(r.flow_tputs_mbps.iter().map(|&x| Value::num(x)).collect()),
        ),
        ("total_tput_mbps".into(), Value::num(r.total_tput_mbps)),
        ("jain".into(), Value::num(r.jain)),
        ("drops".into(), Value::num(r.drops as f64)),
        ("tput_series".into(), series_to_value(&r.tput_series)),
        ("qdelay_series".into(), series_to_value(&r.qdelay_series)),
        (
            "capacity_series".into(),
            series_to_value(&r.capacity_series),
        ),
    ];
    // Emitted only when present, so bulk-only stores (including the
    // pinned tiny baseline) keep their exact pre-workload bytes.
    if let Some(app) = &r.app {
        fields.push(("app".into(), app_to_value(app)));
    }
    // Same optional-trailing-field rule: unimpaired reports carry no
    // impairment counters and keep their exact pre-impairment bytes.
    if !r.impairments.is_empty() {
        fields.push((
            "impairments".into(),
            Value::Arr(
                r.impairments
                    .iter()
                    .map(|i| {
                        Value::Obj(vec![
                            ("label".into(), Value::str(&i.label)),
                            ("passed".into(), Value::num(i.passed as f64)),
                            ("impaired".into(), Value::num(i.impaired as f64)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Value::Obj(fields)
}

fn app_to_value(a: &AppReport) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::new();
    if let Some(w) = &a.web {
        fields.push((
            "web".into(),
            Value::Obj(vec![
                ("flows".into(), Value::num(w.flows as f64)),
                ("completed".into(), Value::num(w.completed as f64)),
                ("fct_ms".into(), summary_to_value(&w.fct_ms)),
            ]),
        ));
    }
    if let Some(r) = &a.rtc {
        fields.push((
            "rtc".into(),
            Value::Obj(vec![
                ("pkts".into(), Value::num(r.pkts as f64)),
                ("misses".into(), Value::num(r.misses as f64)),
                ("miss_rate".into(), Value::num(r.miss_rate)),
                ("owd_ms".into(), summary_to_value(&r.owd_ms)),
            ]),
        ));
    }
    if let Some(v) = &a.video {
        fields.push((
            "video".into(),
            Value::Obj(vec![
                (
                    "chunks_downloaded".into(),
                    Value::num(v.chunks_downloaded as f64),
                ),
                ("chunks_total".into(), Value::num(v.chunks_total as f64)),
                ("mean_bitrate_kbps".into(), Value::num(v.mean_bitrate_kbps)),
                ("play_s".into(), Value::num(v.play_s)),
                ("rebuffer_s".into(), Value::num(v.rebuffer_s)),
                ("rebuffer_ratio".into(), Value::num(v.rebuffer_ratio)),
                ("startup_delay_ms".into(), Value::num(v.startup_delay_ms)),
                ("switches".into(), Value::num(v.switches as f64)),
                ("qoe".into(), Value::num(v.qoe)),
            ]),
        ));
    }
    Value::Obj(fields)
}

fn summary_to_value(s: &Summary) -> Value {
    Value::Obj(vec![
        ("count".into(), Value::num(s.count as f64)),
        ("mean".into(), Value::num(s.mean)),
        ("std_dev".into(), Value::num(s.std_dev)),
        ("min".into(), Value::num(s.min)),
        ("max".into(), Value::num(s.max)),
        ("p50".into(), Value::num(s.p50)),
        ("p95".into(), Value::num(s.p95)),
        ("p99".into(), Value::num(s.p99)),
    ])
}

fn series_to_value(series: &[(f64, f64)]) -> Value {
    Value::Arr(
        series
            .iter()
            .map(|&(t, v)| Value::Arr(vec![Value::num(t), Value::num(v)]))
            .collect(),
    )
}

// ---- reading ----------------------------------------------------------

fn fmt_err(line: usize, message: impl Into<String>) -> StoreError {
    StoreError::Format {
        line,
        message: message.into(),
    }
}

/// A numeric field; `null` reads back as the `NaN` it stood for.
fn num_field(v: &Value, key: &str, line: usize) -> Result<f64, StoreError> {
    match v.get(key) {
        Some(Value::Num(x)) => Ok(*x),
        Some(Value::Null) => Ok(f64::NAN),
        _ => Err(fmt_err(line, format!("missing numeric field {key:?}"))),
    }
}

fn str_field(v: &Value, key: &str, line: usize) -> Result<String, StoreError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| fmt_err(line, format!("missing string field {key:?}")))
}

fn header_from_value(v: &Value, line: usize) -> Result<StoreHeader, StoreError> {
    let axes = v
        .get("axes")
        .and_then(Value::as_arr)
        .ok_or_else(|| fmt_err(line, "missing \"axes\""))?
        .iter()
        .map(|a| {
            let name = str_field(a, "name", line)?;
            let labels = a
                .get("labels")
                .and_then(Value::as_arr)
                .ok_or_else(|| fmt_err(line, "axis without \"labels\""))?
                .iter()
                .map(|l| {
                    l.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| fmt_err(line, "non-string axis label"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok((name, labels))
        })
        .collect::<Result<Vec<_>, StoreError>>()?;
    let filters = v
        .get("filters")
        .and_then(Value::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|f| {
            f.as_str()
                .map(str::to_string)
                .ok_or_else(|| fmt_err(line, "non-string filter name"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StoreHeader {
        schema: str_field(v, "schema", line)?,
        campaign: str_field(v, "campaign", line)?,
        axes,
        filters,
        points: num_field(v, "points", line)? as usize,
    })
}

fn coords_from_value(v: &Value, line: usize) -> Result<Coords, StoreError> {
    Ok(Coords(
        v.get("coords")
            .and_then(Value::as_obj)
            .ok_or_else(|| fmt_err(line, "missing \"coords\""))?
            .iter()
            .map(|(axis, label)| {
                label
                    .as_str()
                    .map(|l| (axis.clone(), l.to_string()))
                    .ok_or_else(|| fmt_err(line, "non-string coordinate label"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    ))
}

fn record_from_value(v: &Value, line: usize) -> Result<RunRecord, StoreError> {
    let coords = coords_from_value(v, line)?;
    let report = v
        .get("report")
        .ok_or_else(|| fmt_err(line, "missing \"report\""))?;
    Ok(RunRecord {
        ordinal: num_field(v, "ordinal", line)? as usize,
        coords,
        report: report_from_value(report, line)?,
    })
}

fn error_record_from_value(v: &Value, line: usize) -> Result<ErrorRecord, StoreError> {
    let coords = coords_from_value(v, line)?;
    let e = v
        .get("error")
        .ok_or_else(|| fmt_err(line, "missing \"error\""))?;
    let kind_name = str_field(e, "kind", line)?;
    let kind = ErrorKind::from_name(&kind_name)
        .ok_or_else(|| fmt_err(line, format!("unknown error kind {kind_name:?}")))?;
    Ok(ErrorRecord {
        ordinal: num_field(v, "ordinal", line)? as usize,
        coords,
        error: PointError {
            kind,
            message: str_field(e, "message", line)?,
        },
    })
}

fn report_from_value(v: &Value, line: usize) -> Result<Report, StoreError> {
    let flow_tputs_mbps = v
        .get("flow_tputs_mbps")
        .and_then(Value::as_arr)
        .ok_or_else(|| fmt_err(line, "missing \"flow_tputs_mbps\""))?
        .iter()
        .map(|x| x.as_f64().unwrap_or(f64::NAN))
        .collect();
    Ok(Report {
        scheme: str_field(v, "scheme", line)?,
        utilization: num_field(v, "utilization", line)?,
        delay_ms: summary_from_value(v.get("delay_ms"), line)?,
        qdelay_ms: summary_from_value(v.get("qdelay_ms"), line)?,
        flow_tputs_mbps,
        total_tput_mbps: num_field(v, "total_tput_mbps", line)?,
        jain: num_field(v, "jain", line)?,
        drops: num_field(v, "drops", line)? as u64,
        tput_series: series_from_value(v.get("tput_series"), line)?,
        qdelay_series: series_from_value(v.get("qdelay_series"), line)?,
        capacity_series: series_from_value(v.get("capacity_series"), line)?,
        app: match v.get("app") {
            Some(a) => Some(app_from_value(a, line)?),
            None => None,
        },
        impairments: match v.get("impairments") {
            Some(i) => impairments_from_value(i, line)?,
            None => Vec::new(),
        },
    })
}

fn impairments_from_value(v: &Value, line: usize) -> Result<Vec<ImpairmentRecord>, StoreError> {
    v.as_arr()
        .ok_or_else(|| fmt_err(line, "\"impairments\" is not an array"))?
        .iter()
        .map(|i| {
            Ok(ImpairmentRecord {
                label: str_field(i, "label", line)?,
                passed: num_field(i, "passed", line)? as u64,
                impaired: num_field(i, "impaired", line)? as u64,
            })
        })
        .collect()
}

fn app_from_value(v: &Value, line: usize) -> Result<AppReport, StoreError> {
    let web = match v.get("web") {
        Some(w) => Some(workload::WebMetrics {
            flows: num_field(w, "flows", line)? as u64,
            completed: num_field(w, "completed", line)? as u64,
            fct_ms: summary_from_value(w.get("fct_ms"), line)?,
        }),
        None => None,
    };
    let rtc = match v.get("rtc") {
        Some(r) => Some(workload::RtcMetrics {
            pkts: num_field(r, "pkts", line)? as u64,
            misses: num_field(r, "misses", line)? as u64,
            miss_rate: num_field(r, "miss_rate", line)?,
            owd_ms: summary_from_value(r.get("owd_ms"), line)?,
        }),
        None => None,
    };
    let video = match v.get("video") {
        Some(x) => Some(workload::VideoMetrics {
            chunks_downloaded: num_field(x, "chunks_downloaded", line)? as u64,
            chunks_total: num_field(x, "chunks_total", line)? as u64,
            mean_bitrate_kbps: num_field(x, "mean_bitrate_kbps", line)?,
            play_s: num_field(x, "play_s", line)?,
            rebuffer_s: num_field(x, "rebuffer_s", line)?,
            rebuffer_ratio: num_field(x, "rebuffer_ratio", line)?,
            startup_delay_ms: num_field(x, "startup_delay_ms", line)?,
            switches: num_field(x, "switches", line)? as u64,
            qoe: num_field(x, "qoe", line)?,
        }),
        None => None,
    };
    Ok(AppReport { web, rtc, video })
}

fn summary_from_value(v: Option<&Value>, line: usize) -> Result<Summary, StoreError> {
    let v = v.ok_or_else(|| fmt_err(line, "missing summary object"))?;
    Ok(Summary {
        count: num_field(v, "count", line)? as usize,
        mean: num_field(v, "mean", line)?,
        std_dev: num_field(v, "std_dev", line)?,
        min: num_field(v, "min", line)?,
        max: num_field(v, "max", line)?,
        p50: num_field(v, "p50", line)?,
        p95: num_field(v, "p95", line)?,
        p99: num_field(v, "p99", line)?,
    })
}

fn series_from_value(v: Option<&Value>, line: usize) -> Result<Vec<(f64, f64)>, StoreError> {
    v.and_then(Value::as_arr)
        .ok_or_else(|| fmt_err(line, "missing series array"))?
        .iter()
        .map(|p| match p.as_arr() {
            Some([t, v]) => Ok((
                t.as_f64().unwrap_or(f64::NAN),
                v.as_f64().unwrap_or(f64::NAN),
            )),
            _ => Err(fmt_err(line, "series point is not a [t, v] pair")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, Campaign};
    use experiments::engine::ScenarioSpec;
    use experiments::scenario::LinkSpec;
    use experiments::Scheme;
    use netsim::rate::Rate;

    fn sample_store() -> ResultsStore {
        let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .duration_secs(1)
            .warmup_secs(0);
        let campaign = Campaign::new("sample", base)
            .axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]))
            .axis(Axis::seeds(&[1]));
        let records = crate::runner::run_campaign(&campaign, &Default::default());
        ResultsStore::new(&campaign, records)
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let store = sample_store();
        let text = store.to_jsonl();
        let back = ResultsStore::from_jsonl(&text).unwrap();
        assert_eq!(back, store, "parse(write(store)) changed the store");
        // serializing the parsed store reproduces the bytes
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn header_is_self_describing() {
        let store = sample_store();
        assert_eq!(store.header.schema, SCHEMA);
        assert_eq!(store.header.campaign, "sample");
        assert_eq!(
            store.header.axes,
            vec![
                (
                    "scheme".to_string(),
                    vec!["ABC".to_string(), "Cubic".to_string()]
                ),
                ("seed".to_string(), vec!["1".to_string()]),
            ]
        );
        assert_eq!(store.header.points, 2);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = sample_store()
            .to_jsonl()
            .replace(SCHEMA, "abc-campaign/v999");
        assert!(matches!(
            ResultsStore::from_jsonl(&text),
            Err(StoreError::Schema { .. })
        ));
    }

    #[test]
    fn truncated_store_is_rejected() {
        let full = sample_store().to_jsonl();
        let truncated: String = full.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(matches!(
            ResultsStore::from_jsonl(&truncated),
            Err(StoreError::Format { .. })
        ));
    }

    #[test]
    fn error_records_round_trip_at_their_ordinal_position() {
        let mut store = sample_store();
        let victim = store.records.remove(1);
        store.errors.push(ErrorRecord {
            ordinal: victim.ordinal,
            coords: victim.coords,
            error: PointError {
                kind: ErrorKind::Watchdog,
                message: "exceeded wall-clock budget of 1s".into(),
            },
        });
        let text = store.to_jsonl();
        // The error line sits where the record's ordinal would: after the
        // header and the surviving ordinal-0 record.
        assert!(text.lines().nth(2).unwrap().contains("\"error\""));
        let back = ResultsStore::from_jsonl(&text).unwrap();
        assert_eq!(back, store, "error records changed across a round trip");
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn impairment_counters_round_trip() {
        let mut store = sample_store();
        store.records[0].report.impairments = vec![ImpairmentRecord {
            label: "0:drop:data".into(),
            passed: 10,
            impaired: 3,
        }];
        let text = store.to_jsonl();
        let back = ResultsStore::from_jsonl(&text).unwrap();
        assert_eq!(back, store);
        assert_eq!(back.to_jsonl(), text);
        // The unimpaired record keeps the pre-impairment line shape.
        assert!(!text.lines().nth(2).unwrap().contains("impairments"));
    }

    #[test]
    fn nan_metrics_survive_as_nan() {
        let mut store = sample_store();
        store.records[0].report.utilization = f64::NAN;
        store.records[0].report.jain = f64::NAN;
        let back = ResultsStore::from_jsonl(&store.to_jsonl()).unwrap();
        assert!(back.records[0].report.utilization.is_nan());
        assert!(back.records[0].report.jain.is_nan());
    }
}
