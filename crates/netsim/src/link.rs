//! Link capacity models.
//!
//! Two abstractions:
//!
//! * [`RateProcess`] — a time-varying capacity curve `µ(t)` (constant, step
//!   schedule, square wave). Used by serialization links and by router
//!   control laws that are granted capacity knowledge (the cellular setting,
//!   §6.2: "ABC's router has knowledge of the underlying link capacity").
//! * [`Transmitter`] — the engine a [`crate::linkqueue::LinkQueue`] node uses
//!   to learn *when* the head-of-line packet finishes transmission. The
//!   trace-driven implementation reproduces Mahimahi's delivery-opportunity
//!   semantics: an opportunity arriving at an empty queue is wasted, which is
//!   exactly why utilization is a meaningful metric on these links.

use crate::rate::Rate;
use crate::time::{SimDuration, SimTime};

/// A deterministic capacity curve.
pub trait RateProcess {
    /// Instantaneous capacity at `t`.
    fn rate_at(&self, t: SimTime) -> Rate;

    /// Exact integral of the curve over `[a, b]`, in bits. Used for
    /// utilization accounting on serialization links.
    fn bits_between(&self, a: SimTime, b: SimTime) -> f64;
}

/// Fixed-capacity link.
#[derive(Debug, Clone, Copy)]
pub struct ConstantRate(pub Rate);

impl RateProcess for ConstantRate {
    fn rate_at(&self, _t: SimTime) -> Rate {
        self.0
    }

    fn bits_between(&self, a: SimTime, b: SimTime) -> f64 {
        self.0.bits_in(b.since(a))
    }
}

/// Piecewise-constant schedule: `steps[i] = (start_time, rate)` sorted by
/// time; the rate before the first step is the first step's rate.
#[derive(Debug, Clone)]
pub struct StepSchedule {
    steps: Vec<(SimTime, Rate)>,
}

impl StepSchedule {
    /// # Panics
    /// If `steps` is empty or not sorted by time.
    pub fn new(steps: Vec<(SimTime, Rate)>) -> Self {
        assert!(!steps.is_empty(), "empty step schedule");
        assert!(
            steps.windows(2).all(|w| w[0].0 <= w[1].0),
            "step schedule not sorted"
        );
        StepSchedule { steps }
    }

    /// Index of the step active at `t`.
    fn active_idx(&self, t: SimTime) -> usize {
        match self.steps.binary_search_by(|(s, _)| s.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }
}

impl RateProcess for StepSchedule {
    fn rate_at(&self, t: SimTime) -> Rate {
        self.steps[self.active_idx(t)].1
    }

    fn bits_between(&self, a: SimTime, b: SimTime) -> f64 {
        if b <= a {
            return 0.0;
        }
        let mut bits = 0.0;
        let mut cur = a;
        let mut idx = self.active_idx(a);
        while cur < b {
            let seg_end = self
                .steps
                .get(idx + 1)
                .map(|(s, _)| *s)
                .unwrap_or(SimTime::MAX)
                .min(b);
            bits += self.steps[idx].1.bits_in(seg_end.since(cur));
            cur = seg_end;
            idx += 1;
        }
        bits
    }
}

/// Square wave alternating between `first` and `second` every `half_period`
/// — the Appendix D "12↔24 Mbit/s every 500 ms" link (Fig. 17).
#[derive(Debug, Clone, Copy)]
pub struct SquareWave {
    /// Rate during the first half-period.
    pub first: Rate,
    /// Rate during the second half-period.
    pub second: Rate,
    /// Dwell time at each rate.
    pub half_period: SimDuration,
}

impl SquareWave {
    /// A square wave holding `first` and `second` for `half_period` each.
    pub fn new(first: Rate, second: Rate, half_period: SimDuration) -> Self {
        assert!(!half_period.is_zero(), "zero half-period");
        SquareWave {
            first,
            second,
            half_period,
        }
    }
}

impl RateProcess for SquareWave {
    fn rate_at(&self, t: SimTime) -> Rate {
        let phase = t.as_nanos() / self.half_period.as_nanos();
        if phase.is_multiple_of(2) {
            self.first
        } else {
            self.second
        }
    }

    fn bits_between(&self, a: SimTime, b: SimTime) -> f64 {
        if b <= a {
            return 0.0;
        }
        // walk half-period boundaries
        let hp = self.half_period.as_nanos();
        let mut bits = 0.0;
        let mut cur = a.as_nanos();
        let end = b.as_nanos();
        while cur < end {
            let boundary = ((cur / hp) + 1) * hp;
            let seg_end = boundary.min(end);
            let rate = self.rate_at(SimTime::from_nanos(cur));
            bits += rate.bits_in(SimDuration::from_nanos(seg_end - cur));
            cur = seg_end;
        }
        bits
    }
}

/// Answers "when does a `size`-byte head-of-line packet, ready at `now`,
/// finish transmission?" — stateful because links remember busy periods
/// and partially-consumed delivery opportunities.
pub trait Transmitter {
    /// Absolute completion time for a transmission of `size` bytes whose
    /// head-of-line packet became transmittable at `now`. Must be `≥ now`.
    /// Returns [`SimTime::MAX`] if the link can never deliver it (stalled
    /// forever) — callers park the queue.
    fn schedule_tx(&mut self, now: SimTime, size: u32) -> SimTime;

    /// Capacity the control plane may observe at `t` (routers granted
    /// capacity knowledge; `t` in the future implements PK-ABC's oracle).
    fn rate_at(&self, t: SimTime) -> Rate;

    /// Bits the link *could* have carried in `[a, b]` — the denominator of
    /// utilization.
    fn opportunity_bits(&self, a: SimTime, b: SimTime) -> f64;
}

/// Classic store-and-forward serialization link over a [`RateProcess`]:
/// transmission takes `size·8 / rate` and the link serves one packet at a
/// time.
pub struct SerialLink<P: RateProcess> {
    process: P,
    busy_until: SimTime,
}

impl<P: RateProcess> SerialLink<P> {
    /// An idle link serializing packets at the rate `process` dictates.
    pub fn new(process: P) -> Self {
        SerialLink {
            process,
            busy_until: SimTime::ZERO,
        }
    }

    /// The rate process driving this link.
    pub fn process(&self) -> &P {
        &self.process
    }
}

impl<P: RateProcess> SerialLink<P> {
    /// Fast path: seed from the analytic `bits/rate` completion time and
    /// fix up ±1 ns steps until `t` is the minimal instant with
    /// `bits_between(start, t) >= bits` — the exact value the binary
    /// search below converges to, found in a handful of evaluations when
    /// the rate is locally constant. Returns `None` (fall back to the
    /// search) when the seed straddles a rate change.
    fn refine_completion(&self, start: SimTime, guess: SimTime, bits: f64) -> Option<SimTime> {
        const FUEL: u32 = 64;
        let mut t = guess.max(start + SimDuration::from_nanos(1));
        if self.process.bits_between(start, t) >= bits {
            for _ in 0..FUEL {
                let prev = SimTime::from_nanos(t.as_nanos() - 1);
                if prev <= start || self.process.bits_between(start, prev) < bits {
                    return Some(t);
                }
                t = prev;
            }
        } else {
            for _ in 0..FUEL {
                t += SimDuration::from_nanos(1);
                if self.process.bits_between(start, t) >= bits {
                    return Some(t);
                }
            }
        }
        None
    }
}

impl<P: RateProcess> Transmitter for SerialLink<P> {
    fn schedule_tx(&mut self, now: SimTime, size: u32) -> SimTime {
        let start = now.max(self.busy_until);
        // The completion time is where the integral of the rate curve
        // reaches the packet's bits — a transmission that straddles a rate
        // step finishes at the *new* rate, so an outage ends when the link
        // recovers rather than holding the packet hostage for size/ε.
        let bits = size as f64 * 8.0;
        let rate = self.process.rate_at(start);
        if !rate.is_zero() {
            let guess = start + rate.tx_time(size);
            if let Some(done) = self.refine_completion(start, guess, bits) {
                self.busy_until = done;
                return done;
            }
        }
        // exponential search for an upper bound…
        let mut span = rate
            .tx_time(size)
            .min(SimDuration::from_secs(3600))
            .max(SimDuration::from_nanos(1_000));
        let mut hi = start + span;
        let mut guard = 0;
        while self.process.bits_between(start, hi) < bits {
            span = span * 2;
            hi = start + span;
            guard += 1;
            if guard > 40 {
                return SimTime::MAX; // link is dead as far as we can see
            }
        }
        // …then binary search to nanosecond resolution
        let mut lo = start;
        while hi.as_nanos() - lo.as_nanos() > 1 {
            let mid = SimTime::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2);
            if self.process.bits_between(start, mid) < bits {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.busy_until = hi;
        hi
    }

    fn rate_at(&self, t: SimTime) -> Rate {
        self.process.rate_at(t)
    }

    fn opportunity_bits(&self, a: SimTime, b: SimTime) -> f64 {
        self.process.bits_between(a, b)
    }
}

/// Mahimahi-style trace-driven link: the trace is a sorted list of delivery
/// opportunities (times at which up to `bytes_per_opp` bytes may leave the
/// queue). The trace repeats with period `period`. Opportunities that find
/// an empty queue are wasted; leftover budget within one opportunity serves
/// the next packet at the same instant (so several 40-byte ACKs ride one
/// 1500-byte opportunity, as in Mahimahi).
pub struct TraceLink {
    /// Opportunity offsets within one period, sorted, each < period.
    opportunities: Vec<SimDuration>,
    period: SimDuration,
    bytes_per_opp: u32,
    /// `Some((t, bytes))`: the opportunity at `t` has been claimed and has
    /// `bytes` of budget left (possibly zero, meaning fully consumed).
    credit: Option<(SimTime, u32)>,
    /// Smoothing window for [`Transmitter::rate_at`].
    rate_window: SimDuration,
}

impl TraceLink {
    /// # Panics
    /// If the trace is empty, unsorted, or has opportunities ≥ `period`.
    pub fn new(opportunities: Vec<SimDuration>, period: SimDuration) -> Self {
        assert!(!opportunities.is_empty(), "empty trace");
        assert!(
            opportunities.windows(2).all(|w| w[0] <= w[1]),
            "trace not sorted"
        );
        assert!(
            *opportunities.last().unwrap() < period,
            "opportunity at/after trace period"
        );
        TraceLink {
            opportunities,
            period,
            bytes_per_opp: crate::packet::MTU_BYTES,
            credit: None,
            rate_window: SimDuration::from_millis(40),
        }
    }

    /// Width of the sliding window used to report instantaneous capacity.
    pub fn with_rate_window(mut self, w: SimDuration) -> Self {
        assert!(!w.is_zero());
        self.rate_window = w;
        self
    }

    /// Wire bytes deliverable per transmission opportunity (MTU default).
    pub fn with_bytes_per_opportunity(mut self, b: u32) -> Self {
        assert!(b > 0);
        self.bytes_per_opp = b;
        self
    }

    /// Length of the trace before it repeats.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Number of opportunities in one period.
    pub fn opportunities_per_period(&self) -> usize {
        self.opportunities.len()
    }

    /// Mean capacity of the trace over one full period.
    pub fn mean_rate(&self) -> Rate {
        Rate::from_bytes_per(
            self.opportunities.len() as u64 * self.bytes_per_opp as u64,
            self.period,
        )
    }

    /// First opportunity at time ≥ `t` (the trace repeats forever).
    fn next_opportunity(&self, t: SimTime) -> SimTime {
        let period = self.period.as_nanos();
        let tn = t.as_nanos();
        let cycle = tn / period;
        let offset = SimDuration::from_nanos(tn % period);
        // binary search for first opportunity >= offset in this cycle
        let idx = self.opportunities.partition_point(|&o| o < offset);
        if idx < self.opportunities.len() {
            SimTime::from_nanos(cycle * period + self.opportunities[idx].as_nanos())
        } else {
            SimTime::from_nanos((cycle + 1) * period + self.opportunities[0].as_nanos())
        }
    }

    /// Count of opportunities in `[a, b)`.
    fn opportunities_between(&self, a: SimTime, b: SimTime) -> u64 {
        if b <= a {
            return 0;
        }
        let period = self.period.as_nanos();
        let count_before = |t: u64| -> u64 {
            let cycles = t / period;
            let offset = SimDuration::from_nanos(t % period);
            let within = self.opportunities.partition_point(|&o| o < offset) as u64;
            cycles * self.opportunities.len() as u64 + within
        };
        count_before(b.as_nanos()) - count_before(a.as_nanos())
    }
}

impl Transmitter for TraceLink {
    fn schedule_tx(&mut self, now: SimTime, size: u32) -> SimTime {
        let mut remaining = size;
        let mut search_from = now;
        if let Some((ct, cb)) = self.credit {
            // Leftover budget is usable only if the head-of-line packet was
            // already waiting when that opportunity fired (ct ≥ now);
            // otherwise the opportunity passed an empty queue and is gone.
            if ct >= now {
                let used = remaining.min(cb);
                remaining -= used;
                if remaining == 0 {
                    self.credit = Some((ct, cb - used));
                    return ct;
                }
                // that opportunity is exhausted; continue strictly after it
                search_from = ct + SimDuration::from_nanos(1);
            }
        }
        let mut t = search_from;
        loop {
            let opp = self.next_opportunity(t);
            if remaining <= self.bytes_per_opp {
                self.credit = Some((opp, self.bytes_per_opp - remaining));
                return opp;
            }
            remaining -= self.bytes_per_opp;
            t = opp + SimDuration::from_nanos(1);
        }
    }

    fn rate_at(&self, t: SimTime) -> Rate {
        let from = t.saturating_sub(self.rate_window);
        let n = self.opportunities_between(from, t + SimDuration::from_nanos(1));
        Rate::from_bytes_per(n * self.bytes_per_opp as u64, self.rate_window)
    }

    fn opportunity_bits(&self, a: SimTime, b: SimTime) -> f64 {
        self.opportunities_between(a, b) as f64 * self.bytes_per_opp as f64 * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::ZERO + ms(x)
    }

    #[test]
    fn constant_rate_integral() {
        let p = ConstantRate(Rate::from_mbps(12.0));
        assert!((p.bits_between(at(0), at(1000)) - 12e6).abs() < 1.0);
    }

    #[test]
    fn step_schedule_lookup_and_integral() {
        let p = StepSchedule::new(vec![
            (at(0), Rate::from_mbps(10.0)),
            (at(100), Rate::from_mbps(20.0)),
        ]);
        assert_eq!(p.rate_at(at(50)).mbps(), 10.0);
        assert_eq!(p.rate_at(at(100)).mbps(), 20.0);
        assert_eq!(p.rate_at(at(500)).mbps(), 20.0);
        // 100ms @10 + 100ms @20 = 1e6 + 2e6 bits
        assert!((p.bits_between(at(0), at(200)) - 3e6).abs() < 1.0);
    }

    #[test]
    fn square_wave_alternates() {
        let p = SquareWave::new(Rate::from_mbps(12.0), Rate::from_mbps(24.0), ms(500));
        assert_eq!(p.rate_at(at(0)).mbps(), 12.0);
        assert_eq!(p.rate_at(at(499)).mbps(), 12.0);
        assert_eq!(p.rate_at(at(500)).mbps(), 24.0);
        assert_eq!(p.rate_at(at(1000)).mbps(), 12.0);
        // one full second = 500ms of each
        assert!((p.bits_between(at(0), at(1000)) - 18e6).abs() < 1.0);
        // straddling a boundary
        assert!((p.bits_between(at(400), at(600)) - (12e6 * 0.1 + 24e6 * 0.1)).abs() < 1.0);
    }

    #[test]
    fn serial_link_serializes_back_to_back() {
        let mut l = SerialLink::new(ConstantRate(Rate::from_mbps(12.0)));
        // 1500B at 12 Mbit/s = 1 ms
        let d1 = l.schedule_tx(at(0), 1500);
        assert_eq!(d1, at(1));
        let d2 = l.schedule_tx(at(0), 1500); // queued behind the first
        assert_eq!(d2, at(2));
        // after idle, starts immediately
        let d3 = l.schedule_tx(at(10), 1500);
        assert_eq!(d3, at(11));
    }

    #[test]
    fn serial_link_zero_rate_parks() {
        let mut l = SerialLink::new(ConstantRate(Rate::ZERO));
        assert_eq!(l.schedule_tx(at(5), 1500), SimTime::MAX);
    }

    fn trace_every_ms() -> TraceLink {
        // one opportunity per ms → 12 Mbit/s with 1500B packets
        let opps = (0..1000).map(ms).collect();
        TraceLink::new(opps, SimDuration::from_secs(1))
    }

    #[test]
    fn trace_link_mean_rate() {
        let l = trace_every_ms();
        assert!((l.mean_rate().mbps() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn trace_link_delivers_at_opportunities() {
        let mut l = trace_every_ms();
        // packet ready at 0.5ms → next opportunity at 1ms
        let d = l.schedule_tx(at(0) + SimDuration::from_micros(500), 1500);
        assert_eq!(d, at(1));
        // next full packet: strictly later opportunity (2ms)
        let d2 = l.schedule_tx(d, 1500);
        assert_eq!(d2, at(2));
    }

    #[test]
    fn trace_link_wastes_idle_opportunities() {
        let mut l = trace_every_ms();
        let d = l.schedule_tx(at(0), 1500);
        assert_eq!(d, at(0)); // opportunity exactly at 0
                              // idle until 5.5ms → opportunity at 6ms, the ones at 1..5ms wasted
        let d2 = l.schedule_tx(at(5) + SimDuration::from_micros(500), 1500);
        assert_eq!(d2, at(6));
    }

    #[test]
    fn trace_link_packs_small_packets_into_one_opportunity() {
        let mut l = trace_every_ms();
        let d1 = l.schedule_tx(at(0), 40);
        assert_eq!(d1, at(0));
        // 36 more ACKs fit in the same 1500B opportunity (37·40=1480)
        for _ in 0..36 {
            assert_eq!(l.schedule_tx(d1, 40), at(0));
        }
        // the 38th spills into the next opportunity
        assert_eq!(l.schedule_tx(d1, 40), at(1));
    }

    #[test]
    fn trace_link_spans_periods() {
        let opps = vec![ms(0), ms(500)];
        let mut l = TraceLink::new(opps, SimDuration::from_secs(1));
        let d = l.schedule_tx(at(600), 1500);
        assert_eq!(d, at(1000)); // wraps into the next period
        let d2 = l.schedule_tx(at(1100), 1500);
        assert_eq!(d2, at(1500));
    }

    #[test]
    fn trace_link_rate_window() {
        let l = trace_every_ms();
        // 40ms window with one 1500B opportunity per ms = 12 Mbit/s
        let r = l.rate_at(at(100));
        assert!((r.mbps() - 12.0).abs() < 0.5, "got {r}");
    }

    #[test]
    fn trace_link_opportunity_bits() {
        let l = trace_every_ms();
        let bits = l.opportunity_bits(at(0), at(1000));
        assert!((bits - 12e6).abs() < 1e-6);
    }

    #[test]
    fn trace_link_large_packet_spans_opportunities() {
        let mut l = trace_every_ms();
        // 3000B needs two opportunities: 0ms and 1ms
        let d = l.schedule_tx(at(0), 3000);
        assert_eq!(d, at(1));
    }
}
