//! Differential validation of the ABC-Cubic deployment endpoint (§4.1).
//!
//! The scheme's contract is a two-sided sandwich:
//!
//! * on an all-ABC path it must behave like plain ABC (the embedded
//!   [`AbcSender`] governs from the first brake echo onward), and
//! * on an all-droptail path it must behave like plain Cubic (the legacy
//!   window mirrors the loss-only baseline bit for bit, so the flow-level
//!   report is *identical*, not merely close).
//!
//! Both sides run the real engine end to end — sender, pacing, qdisc,
//! metrics — not the unit-level mode machine, so a regression anywhere in
//! the stack (ECN stamping, qdisc selection, ACK plumbing) trips them.

use experiments::engine::{AbcRouterConfig, QdiscSpec, ScenarioEngine, ScenarioSpec};
use experiments::report::Report;
use experiments::scenario::LinkSpec;
use experiments::Scheme;
use netsim::rate::Rate;
use netsim::time::SimDuration;

fn run(scheme: Scheme, qdisc: QdiscSpec, seed: u64) -> Report {
    // 2 s of warmup hides the one startup difference the scheme is
    // allowed (legacy slow start until the first brake echo); everything
    // after it must match the reference scheme.
    let spec = ScenarioSpec::single(scheme, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .qdisc(qdisc)
        .duration(SimDuration::from_secs(8))
        .warmup(SimDuration::from_secs(2))
        .seed(seed);
    ScenarioEngine::with_threads(1).run(&spec)
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-9)
}

/// On a path whose bottleneck marks, ABC-Cubic locks into ABC mode and
/// its flow-level behavior matches plain ABC within a tight band. The
/// two are not bit-identical — ABC-Cubic's first window, before the
/// first brake echo arrives, is Cubic's — so the tolerance covers one
/// startup RTT of divergence and nothing more.
#[test]
fn abc_cubic_matches_abc_on_an_all_abc_path() {
    for seed in [1, 2, 3] {
        let abc_qdisc = QdiscSpec::AbcWith(AbcRouterConfig::default());
        let hybrid = run(Scheme::AbcCubic, abc_qdisc.clone(), seed);
        let pure = run(Scheme::Abc, abc_qdisc, seed);
        assert!(
            rel_diff(hybrid.total_tput_mbps, pure.total_tput_mbps) < 0.02,
            "seed {seed}: throughput diverged — ABC-Cubic {} vs ABC {} Mbit/s",
            hybrid.total_tput_mbps,
            pure.total_tput_mbps
        );
        assert!(
            (hybrid.qdelay_ms.p95 - pure.qdelay_ms.p95).abs() < 2.0,
            "seed {seed}: qdelay p95 diverged — ABC-Cubic {} vs ABC {} ms",
            hybrid.qdelay_ms.p95,
            pure.qdelay_ms.p95
        );
        assert!(
            (hybrid.qdelay_ms.mean - pure.qdelay_ms.mean).abs() < 2.0,
            "seed {seed}: qdelay mean diverged — ABC-Cubic {} vs ABC {} ms",
            hybrid.qdelay_ms.mean,
            pure.qdelay_ms.mean
        );
    }
}

/// On an all-droptail path no brake echo ever arrives, so the legacy
/// window governs for the whole run — and the legacy window *is* the
/// stand-alone Cubic baseline. The accelerate stamp ABC-Cubic keeps on
/// its packets is inert at a droptail hop, so every flow-level metric
/// must come out bitwise identical, not just close.
#[test]
fn abc_cubic_is_bitwise_cubic_on_an_all_droptail_path() {
    for seed in [1, 2] {
        let hybrid = run(Scheme::AbcCubic, QdiscSpec::DropTail, seed);
        let pure = run(Scheme::Cubic, QdiscSpec::DropTail, seed);
        assert_eq!(
            hybrid.flow_tputs_mbps, pure.flow_tputs_mbps,
            "seed {seed}: per-flow throughput diverged from Cubic"
        );
        assert_eq!(
            hybrid.total_tput_mbps, pure.total_tput_mbps,
            "seed {seed}: total throughput diverged from Cubic"
        );
        assert_eq!(
            hybrid.qdelay_ms, pure.qdelay_ms,
            "seed {seed}: qdelay summary diverged from Cubic"
        );
        assert_eq!(
            hybrid.delay_ms, pure.delay_ms,
            "seed {seed}: delay summary diverged from Cubic"
        );
        assert_eq!(
            hybrid.drops, pure.drops,
            "seed {seed}: drop count diverged from Cubic"
        );
        assert_eq!(
            hybrid.utilization, pure.utilization,
            "seed {seed}: utilization diverged from Cubic"
        );
    }
}

/// The same spec run twice is byte-identical — the coexistence paths add
/// no hidden nondeterminism (this is the per-scenario face of the
/// store-level determinism gate in CI).
#[test]
fn coexistence_runs_are_deterministic() {
    let abc_qdisc = QdiscSpec::AbcWith(AbcRouterConfig::default());
    let a = run(Scheme::AbcCubic, abc_qdisc.clone(), 9);
    let b = run(Scheme::AbcCubic, abc_qdisc, 9);
    assert_eq!(a, b, "ABC-Cubic rerun diverged");
}
