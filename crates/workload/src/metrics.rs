//! Application-level metric types — what each workload model reports —
//! plus the fold helpers the scenario engine uses to turn raw per-flow
//! records into them. All floats use `NaN` for "not applicable" (no
//! flows, playback never started), which the results store serializes as
//! `null`.

use netsim::stats::{summarize_in_place, Summary};
use netsim::time::SimTime;

/// Web request/response outcomes: flow-completion times.
#[derive(Debug, Clone, PartialEq)]
pub struct WebMetrics {
    /// Requests the workload issued.
    pub flows: u64,
    /// Requests fully delivered before the run ended.
    pub completed: u64,
    /// Completion-time summary (ms) over the completed requests.
    pub fct_ms: Summary,
}

/// RTC deadline accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct RtcMetrics {
    /// Unique packets delivered to the receiver (duplicates from
    /// spurious retransmissions excluded).
    pub pkts: u64,
    /// Deliveries that busted the deadline: wire one-way delay over the
    /// budget, or data recovered via retransmission (the original was
    /// lost, so the replacement is late by at least a loss recovery).
    pub misses: u64,
    /// `misses / pkts` (`NaN` when nothing was delivered).
    pub miss_rate: f64,
    /// One-way-delay summary (ms) over the stream's packets.
    pub owd_ms: Summary,
}

/// ABR video session outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoMetrics {
    /// Chunks fully downloaded by stream end.
    pub chunks_downloaded: u64,
    /// Chunks the stream comprises.
    pub chunks_total: u64,
    /// Mean selected ladder rate over downloaded chunks (`NaN` if none).
    pub mean_bitrate_kbps: f64,
    /// Media seconds actually played.
    pub play_s: f64,
    /// Wall seconds stalled while media remained to play.
    pub rebuffer_s: f64,
    /// `rebuffer / (play + rebuffer)` (`NaN` before any playback).
    pub rebuffer_ratio: f64,
    /// First-frame latency (`NaN` if playback never started).
    pub startup_delay_ms: f64,
    /// Ladder-rung changes between consecutive chunks.
    pub switches: u64,
    /// Linear QoE: normalized bitrate − 4.3·rebuffer ratio − normalized
    /// switching churn.
    pub qoe: f64,
}

/// One web request's observed outcome, as the engine reads it back from
/// the metrics hub.
#[derive(Debug, Clone, Copy)]
pub struct WebFlowOutcome {
    /// When the request started.
    pub start: SimTime,
    /// Wire bytes the request was registered to deliver.
    pub expected_bytes: u64,
    /// When cumulative delivery reached `expected_bytes`, if it did.
    pub completed_at: Option<SimTime>,
}

/// Fold web request outcomes into [`WebMetrics`].
///
/// Edge cases pinned by tests: an empty schedule reports zero flows and
/// an empty summary; a zero-length request is complete the instant it
/// starts (FCT 0) even though no packet is ever delivered.
pub fn web_metrics(outcomes: &[WebFlowOutcome]) -> WebMetrics {
    let mut fcts: Vec<f64> = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        if o.expected_bytes == 0 {
            fcts.push(0.0);
        } else if let Some(done) = o.completed_at {
            fcts.push(done.since(o.start).as_millis_f64());
        }
    }
    let completed = fcts.len() as u64;
    WebMetrics {
        flows: outcomes.len() as u64,
        completed,
        fct_ms: summarize_in_place(&mut fcts),
    }
}

/// Fold RTC delivery accounting into [`RtcMetrics`]. `owd_ms` consumes
/// the delay samples (sorted in place).
pub fn rtc_metrics(pkts: u64, misses: u64, delays_ms: &mut [f64]) -> RtcMetrics {
    RtcMetrics {
        pkts,
        misses,
        miss_rate: if pkts > 0 {
            misses as f64 / pkts as f64
        } else {
            f64::NAN
        },
        owd_ms: summarize_in_place(delays_ms),
    }
}

/// Merge per-session video metrics into one aggregate (chunk-weighted
/// bitrate, pooled stall time). An empty slice reports `NaN` ratios.
pub fn merge_video(sessions: &[VideoMetrics]) -> VideoMetrics {
    let chunks: u64 = sessions.iter().map(|s| s.chunks_downloaded).sum();
    let total: u64 = sessions.iter().map(|s| s.chunks_total).sum();
    let play_s: f64 = sessions.iter().map(|s| s.play_s).sum();
    let rebuffer_s: f64 = sessions.iter().map(|s| s.rebuffer_s).sum();
    let wall = play_s + rebuffer_s;
    let mean_bitrate_kbps = if chunks > 0 {
        sessions
            .iter()
            .filter(|s| s.chunks_downloaded > 0)
            .map(|s| s.mean_bitrate_kbps * s.chunks_downloaded as f64)
            .sum::<f64>()
            / chunks as f64
    } else {
        f64::NAN
    };
    let startups: Vec<f64> = sessions
        .iter()
        .map(|s| s.startup_delay_ms)
        .filter(|x| !x.is_nan())
        .collect();
    let qoes: Vec<f64> = sessions
        .iter()
        .map(|s| s.qoe)
        .filter(|x| !x.is_nan())
        .collect();
    VideoMetrics {
        chunks_downloaded: chunks,
        chunks_total: total,
        mean_bitrate_kbps,
        play_s,
        rebuffer_s,
        rebuffer_ratio: if wall > 0.0 {
            rebuffer_s / wall
        } else {
            f64::NAN
        },
        startup_delay_ms: if startups.is_empty() {
            f64::NAN
        } else {
            startups.iter().sum::<f64>() / startups.len() as f64
        },
        switches: sessions.iter().map(|s| s.switches).sum(),
        qoe: if qoes.is_empty() {
            f64::NAN
        } else {
            qoes.iter().sum::<f64>() / qoes.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn empty_schedule_is_zeroes_not_panics() {
        let m = web_metrics(&[]);
        assert_eq!(m.flows, 0);
        assert_eq!(m.completed, 0);
        assert_eq!(m.fct_ms.count, 0);
    }

    #[test]
    fn zero_length_flow_completes_instantly() {
        let m = web_metrics(&[WebFlowOutcome {
            start: at(500),
            expected_bytes: 0,
            completed_at: None,
        }]);
        assert_eq!(m.completed, 1);
        assert_eq!(m.fct_ms.p95, 0.0);
    }

    #[test]
    fn incomplete_flows_are_counted_but_not_summarized() {
        let m = web_metrics(&[
            WebFlowOutcome {
                start: at(0),
                expected_bytes: 3000,
                completed_at: Some(at(40)),
            },
            WebFlowOutcome {
                start: at(100),
                expected_bytes: 9000,
                completed_at: None, // run ended first
            },
        ]);
        assert_eq!(m.flows, 2);
        assert_eq!(m.completed, 1);
        assert_eq!(m.fct_ms.count, 1);
        assert_eq!(m.fct_ms.max, 40.0);
    }

    #[test]
    fn rtc_miss_rate_handles_silence() {
        let m = rtc_metrics(0, 0, &mut []);
        assert!(m.miss_rate.is_nan());
        let m = rtc_metrics(200, 30, &mut [10.0, 20.0]);
        assert!((m.miss_rate - 0.15).abs() < 1e-12);
        assert_eq!(m.owd_ms.count, 2);
    }

    #[test]
    fn merge_video_weights_by_chunks() {
        let a = VideoMetrics {
            chunks_downloaded: 10,
            chunks_total: 10,
            mean_bitrate_kbps: 1000.0,
            play_s: 20.0,
            rebuffer_s: 0.0,
            rebuffer_ratio: 0.0,
            startup_delay_ms: 100.0,
            switches: 1,
            qoe: 0.8,
        };
        let b = VideoMetrics {
            chunks_downloaded: 30,
            chunks_total: 30,
            mean_bitrate_kbps: 3000.0,
            play_s: 60.0,
            rebuffer_s: 20.0,
            rebuffer_ratio: 0.25,
            startup_delay_ms: 300.0,
            switches: 3,
            qoe: 0.2,
        };
        let m = merge_video(&[a, b]);
        assert_eq!(m.chunks_downloaded, 40);
        assert!((m.mean_bitrate_kbps - 2500.0).abs() < 1e-9);
        assert!((m.rebuffer_ratio - 0.2).abs() < 1e-12);
        assert!((m.startup_delay_ms - 200.0).abs() < 1e-9);
        assert_eq!(m.switches, 4);
        assert!((m.qoe - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_of_nothing_is_nan() {
        let m = merge_video(&[]);
        assert!(m.mean_bitrate_kbps.is_nan());
        assert!(m.rebuffer_ratio.is_nan());
        assert_eq!(m.chunks_downloaded, 0);
    }
}
