//! The declarative [`Campaign`] type: named axes over the scenario
//! parameters, cartesian expansion, and constraint filters.
//!
//! A campaign is a base [`ScenarioSpec`] plus an ordered list of [`Axis`]
//! values. Expansion walks the cartesian product in **row-major order**
//! (the last axis varies fastest) and applies each axis value to a clone
//! of the base spec, so the resulting [`CampaignPoint`] list is a pure,
//! deterministic function of the campaign — the property the results
//! store's bit-identical guarantee is built on. Filters drop points by
//! their coordinates *before* any simulation runs; a dropped point keeps
//! its gap in the [`CampaignPoint::ordinal`] numbering, so ordinals stay
//! stable shard ids as filters evolve.

use cellular::CellTrace;
use experiments::engine::{
    FlowSchedule, InjectedFault, QdiscSpec, ScenarioSpec, Topology, WorkloadEntry,
};
use experiments::scenario::LinkSpec;
use experiments::Scheme;
use netsim::fault::ImpairmentSpec;
use netsim::time::SimDuration;
use std::fmt;
use std::sync::Arc;

/// One setting of one axis: the scenario-parameter write it performs.
#[derive(Debug, Clone)]
pub enum AxisValue {
    /// Set the congestion-control scheme.
    Scheme(Scheme),
    /// Single-bottleneck topology over this link.
    Link(LinkSpec),
    /// Replace the whole topology (multi-hop paths).
    Topology(Topology),
    /// Replace the flow schedule.
    Flows(FlowSchedule),
    /// Override the bottleneck qdisc.
    Qdisc(QdiscSpec),
    /// Set the path round-trip propagation delay (milliseconds).
    RttMs(u64),
    /// Set the bottleneck buffer (packets).
    BufferPkts(usize),
    /// Set the simulated duration (seconds).
    DurationSecs(u64),
    /// Set the measurement warmup (seconds).
    WarmupSecs(u64),
    /// Set the seed for every stochastic choice.
    Seed(u64),
    /// Replace the spec's application-layer workload mix (web/RTC/ABR).
    Workloads(Vec<WorkloadEntry>),
    /// Set the timer-wheel slot width (`2^shift` ns slots) — a pure
    /// performance knob; outputs are invariant to it.
    TimerSlotShift(u32),
    /// Replace the spec's adversarial-impairment list. An empty list is
    /// the unimpaired control: its points build the exact same node graph
    /// as a spec with no impairment axis at all, so stored bytes match.
    Impairments(Vec<ImpairmentSpec>),
    /// Inject a test-only execution fault (`None` clears it) — the hook
    /// the fault-tolerance tests use to make exactly one point panic or
    /// stall inside a real campaign.
    Fault(Option<InjectedFault>),
}

impl AxisValue {
    /// Apply this setting to a spec.
    pub fn apply(&self, spec: &mut ScenarioSpec) {
        match self {
            AxisValue::Scheme(s) => spec.scheme = *s,
            AxisValue::Link(l) => spec.topology = Topology::SingleBottleneck(l.clone()),
            AxisValue::Topology(t) => spec.topology = t.clone(),
            AxisValue::Flows(f) => spec.flows = f.clone(),
            AxisValue::Qdisc(q) => spec.qdisc = q.clone(),
            AxisValue::RttMs(ms) => spec.rtt = SimDuration::from_millis(*ms),
            AxisValue::BufferPkts(p) => spec.buffer_pkts = *p,
            AxisValue::DurationSecs(s) => spec.duration = SimDuration::from_secs(*s),
            AxisValue::WarmupSecs(s) => spec.warmup = SimDuration::from_secs(*s),
            AxisValue::Seed(s) => spec.seed = *s,
            AxisValue::Workloads(w) => spec.workloads = w.clone(),
            AxisValue::TimerSlotShift(s) => spec.timer_slot_shift = Some(*s),
            AxisValue::Impairments(i) => spec.impairments = i.clone(),
            AxisValue::Fault(f) => spec.fault = *f,
        }
    }
}

/// A named sweep dimension: an ordered list of labeled settings.
#[derive(Debug, Clone)]
pub struct Axis {
    /// The axis name, as store coordinates report it.
    pub name: String,
    /// `(label, setting)` — the label is what coordinates, stores, and
    /// reports show.
    pub values: Vec<(String, AxisValue)>,
}

impl Axis {
    /// An axis from explicit `(label, setting)` values (panics if
    /// `values` is empty — campaign files validate this earlier, with
    /// positions).
    pub fn new(name: impl Into<String>, values: Vec<(String, AxisValue)>) -> Axis {
        let axis = Axis {
            name: name.into(),
            values,
        };
        assert!(
            !axis.values.is_empty(),
            "axis {:?} has no values",
            axis.name
        );
        axis
    }

    /// The `"scheme"` axis, labeled with [`Scheme::name`].
    pub fn schemes(schemes: &[Scheme]) -> Axis {
        Axis::new(
            "scheme",
            schemes
                .iter()
                .map(|&s| (s.name(), AxisValue::Scheme(s)))
                .collect(),
        )
    }

    /// The `"trace"` axis: a single-bottleneck link per cellular trace.
    pub fn traces(traces: &[CellTrace]) -> Axis {
        Axis::new(
            "trace",
            traces
                .iter()
                .map(|t| (t.name.clone(), AxisValue::Link(LinkSpec::Trace(t.clone()))))
                .collect(),
        )
    }

    /// The `"rtt_ms"` axis.
    pub fn rtts_ms(rtts: &[u64]) -> Axis {
        Axis::new(
            "rtt_ms",
            rtts.iter()
                .map(|&ms| (ms.to_string(), AxisValue::RttMs(ms)))
                .collect(),
        )
    }

    /// The `"buffer_pkts"` axis.
    pub fn buffers_pkts(buffers: &[usize]) -> Axis {
        Axis::new(
            "buffer_pkts",
            buffers
                .iter()
                .map(|&p| (p.to_string(), AxisValue::BufferPkts(p)))
                .collect(),
        )
    }

    /// The `"flows"` axis: `n` backlogged flows per value, labeled by the
    /// count — the client-density sweep of the many-users regime.
    pub fn flow_counts(counts: &[u32]) -> Axis {
        Axis::new(
            "flows",
            counts
                .iter()
                .map(|&n| (n.to_string(), AxisValue::Flows(FlowSchedule::backlogged(n))))
                .collect(),
        )
    }

    /// The `"seed"` axis (across-seed replication).
    pub fn seeds(seeds: &[u64]) -> Axis {
        Axis::new(
            "seed",
            seeds
                .iter()
                .map(|&s| (s.to_string(), AxisValue::Seed(s)))
                .collect(),
        )
    }

    /// A labeled topology axis (e.g. the pareto figure's down/up/two-hop
    /// paths).
    pub fn paths(name: impl Into<String>, paths: Vec<(String, Topology)>) -> Axis {
        Axis::new(
            name,
            paths
                .into_iter()
                .map(|(label, t)| (label, AxisValue::Topology(t)))
                .collect(),
        )
    }

    /// The `"impairment"` axis: each value is a labeled impairment list.
    /// Include a `("none", vec![])` value to keep an unimpaired control
    /// point in the sweep — an empty list builds the exact node graph an
    /// impairment-free spec would.
    pub fn impairments(values: Vec<(String, Vec<ImpairmentSpec>)>) -> Axis {
        Axis::new(
            "impairment",
            values
                .into_iter()
                .map(|(label, imps)| (label, AxisValue::Impairments(imps)))
                .collect(),
        )
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis has no values (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value labels, in declaration order.
    pub fn labels(&self) -> Vec<String> {
        self.values.iter().map(|(l, _)| l.clone()).collect()
    }
}

/// A point's coordinates: `(axis name, value label)` in axis order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coords(pub Vec<(String, String)>);

impl Coords {
    /// The label this point has on `axis`, if the campaign has that axis.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, l)| l.as_str())
    }

    /// A stable identity string: `axis=label` pairs joined with `,`.
    pub fn key(&self) -> String {
        self.0
            .iter()
            .map(|(a, l)| format!("{a}={l}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// These coordinates with one axis removed (grouping across that
    /// axis, e.g. across seeds).
    pub fn without(&self, axis: &str) -> Coords {
        Coords(self.0.iter().filter(|(a, _)| a != axis).cloned().collect())
    }
}

impl fmt::Display for Coords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// A named constraint over coordinates; points failing any filter are
/// skipped before execution.
#[derive(Clone)]
pub struct Filter {
    /// The filter name, recorded in store headers.
    pub name: String,
    pred: Arc<dyn Fn(&Coords) -> bool + Send + Sync>,
}

impl Filter {
    /// A named constraint from a coordinate predicate.
    pub fn new(
        name: impl Into<String>,
        pred: impl Fn(&Coords) -> bool + Send + Sync + 'static,
    ) -> Filter {
        Filter {
            name: name.into(),
            pred: Arc::new(pred),
        }
    }

    /// Does this filter keep a point at `coords`?
    pub fn accepts(&self, coords: &Coords) -> bool {
        (self.pred)(coords)
    }
}

impl fmt::Debug for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Filter").field("name", &self.name).finish()
    }
}

/// One expanded scenario of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// Position in the *unfiltered* cartesian product — a stable shard id
    /// that doesn't shift when filters change.
    pub ordinal: usize,
    /// `(axis, label)` coordinates in axis order.
    pub coords: Coords,
    /// The concrete scenario this point runs.
    pub spec: ScenarioSpec,
}

/// A declarative sweep: base spec × named axes, minus filtered points.
/// See the [module docs](self).
///
/// ```
/// use campaign::{Axis, Campaign};
/// use experiments::engine::ScenarioSpec;
/// use experiments::scenario::LinkSpec;
/// use experiments::Scheme;
/// use netsim::rate::Rate;
///
/// let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)));
/// let sweep = Campaign::new("demo", base)
///     .axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]))
///     .axis(Axis::seeds(&[1, 2, 3]));
/// let points = sweep.expand();
/// assert_eq!(points.len(), 6); // row-major, last axis (seed) fastest
/// assert_eq!(points[1].coords.key(), "scheme=ABC,seed=2");
/// assert_eq!(points[4].spec.scheme, Scheme::Cubic);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The campaign name, recorded in store headers.
    pub name: String,
    /// The scenario every point starts from.
    pub base: ScenarioSpec,
    /// The sweep dimensions, in expansion (row-major) order.
    pub axes: Vec<Axis>,
    /// Constraints dropping points before execution.
    pub filters: Vec<Filter>,
    /// Telemetry sidecar recording applied to every expanded point
    /// (`None` leaves each point's spec untouched). Sidecars never enter
    /// the results store, so this does not perturb stored bytes.
    pub telemetry: Option<netsim::telemetry::TelemetryConfig>,
}

impl Campaign {
    /// A campaign of just `base`, with no axes or filters yet.
    pub fn new(name: impl Into<String>, base: ScenarioSpec) -> Campaign {
        Campaign {
            name: name.into(),
            base,
            axes: Vec::new(),
            filters: Vec::new(),
            telemetry: None,
        }
    }

    /// Record telemetry sidecars for every point (signals and cadence per
    /// `cfg`). The runner writes them out when given a directory; the
    /// results store never sees them.
    pub fn telemetry(mut self, cfg: netsim::telemetry::TelemetryConfig) -> Campaign {
        self.telemetry = Some(cfg);
        self
    }

    /// Append an axis (panics on a duplicate axis name).
    pub fn axis(mut self, axis: Axis) -> Campaign {
        assert!(
            self.axes.iter().all(|a| a.name != axis.name),
            "duplicate axis {:?} in campaign {:?}",
            axis.name,
            self.name
        );
        self.axes.push(axis);
        self
    }

    /// Append a constraint filter.
    pub fn filter(mut self, f: Filter) -> Campaign {
        self.filters.push(f);
        self
    }

    /// Size of the full cartesian product, before filtering.
    pub fn size_unfiltered(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Expand into concrete scenario points, in deterministic row-major
    /// order (last axis fastest), dropping filtered points.
    pub fn expand(&self) -> Vec<CampaignPoint> {
        let total = self.size_unfiltered();
        let mut out = Vec::with_capacity(total);
        'points: for ordinal in 0..total {
            // Decode the ordinal as mixed-radix digits over the axes.
            let mut rem = ordinal;
            let mut idx = vec![0usize; self.axes.len()];
            for (k, axis) in self.axes.iter().enumerate().rev() {
                idx[k] = rem % axis.len();
                rem /= axis.len();
            }
            let coords = Coords(
                self.axes
                    .iter()
                    .zip(&idx)
                    .map(|(axis, &i)| (axis.name.clone(), axis.values[i].0.clone()))
                    .collect(),
            );
            for f in &self.filters {
                if !f.accepts(&coords) {
                    continue 'points;
                }
            }
            let mut spec = self.base.clone();
            for (axis, &i) in self.axes.iter().zip(&idx) {
                axis.values[i].1.apply(&mut spec);
            }
            if let Some(cfg) = &self.telemetry {
                spec.telemetry = Some(cfg.clone());
            }
            out.push(CampaignPoint {
                ordinal,
                coords,
                spec,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rate::Rate;

    fn base() -> ScenarioSpec {
        ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
    }

    fn c2x3() -> Campaign {
        Campaign::new("t", base())
            .axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]))
            .axis(Axis::rtts_ms(&[20, 50, 100]))
    }

    #[test]
    fn expansion_is_row_major_with_last_axis_fastest() {
        let pts = c2x3().expand();
        assert_eq!(pts.len(), 6);
        let keys: Vec<String> = pts.iter().map(|p| p.coords.key()).collect();
        assert_eq!(keys[0], "scheme=ABC,rtt_ms=20");
        assert_eq!(keys[1], "scheme=ABC,rtt_ms=50");
        assert_eq!(keys[3], "scheme=Cubic,rtt_ms=20");
        assert_eq!(pts[3].ordinal, 3);
        assert_eq!(pts[3].spec.scheme, Scheme::Cubic);
        assert_eq!(pts[1].spec.rtt, SimDuration::from_millis(50));
    }

    #[test]
    fn filters_drop_points_but_keep_ordinals() {
        let c = c2x3().filter(Filter::new("abc-only-short-rtt", |co: &Coords| {
            co.get("scheme") != Some("ABC") || co.get("rtt_ms") == Some("20")
        }));
        let pts = c.expand();
        assert_eq!(pts.len(), 4); // ABC keeps 1 of 3 rtts, Cubic keeps all 3
        assert_eq!(pts[0].ordinal, 0);
        assert_eq!(pts[1].ordinal, 3); // the two dropped ABC points left a gap
        for p in &pts {
            assert!(c.filters[0].accepts(&p.coords));
        }
    }

    #[test]
    fn no_axes_means_one_point() {
        let pts = Campaign::new("single", base()).expand();
        assert_eq!(pts.len(), 1);
        assert!(pts[0].coords.0.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate axis")]
    fn duplicate_axis_panics() {
        let _ = Campaign::new("dup", base())
            .axis(Axis::seeds(&[1]))
            .axis(Axis::seeds(&[2]));
    }

    #[test]
    fn coords_key_and_without() {
        let co = Coords(vec![
            ("scheme".into(), "ABC".into()),
            ("seed".into(), "7".into()),
        ]);
        assert_eq!(co.key(), "scheme=ABC,seed=7");
        assert_eq!(co.without("seed").key(), "scheme=ABC");
        assert_eq!(co.get("seed"), Some("7"));
        assert_eq!(co.get("nope"), None);
    }
}
