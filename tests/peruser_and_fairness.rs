//! §4.2 per-user cellular scheduling and §3.1.3 RTT-fairness claims.

use abc_repro::abc_core::router::{AbcQdisc, AbcRouterConfig};
use abc_repro::cellular::{CellTrace, PerUserLink};
use abc_repro::experiments::Scheme;
use abc_repro::netsim::flow::{Sender, Sink, TrafficSource};
use abc_repro::netsim::metrics::new_hub;
use abc_repro::netsim::packet::{FlowId, Route};
use abc_repro::netsim::queue::DropTail;
use abc_repro::netsim::sim::Simulator;
use abc_repro::netsim::time::{SimDuration, SimTime};

fn uniform_trace(pps: u64, secs: u64) -> CellTrace {
    let gap_ns = 1_000_000_000 / pps;
    CellTrace {
        name: "uniform".into(),
        opportunities: (0..pps * secs)
            .map(|i| SimDuration::from_nanos(i * gap_ns))
            .collect(),
        period: SimDuration::from_secs(secs),
    }
}

/// §4.2's motivation for per-user queues: an ABC user keeps its own queue
/// (and thus delay) small even while a Cubic bufferbloater next to it
/// fills its own per-user queue. With a *shared* queue that isolation
/// would be impossible.
#[test]
fn per_user_queues_isolate_abc_from_a_bufferbloater() {
    let mut sim = Simulator::new();
    let hub = new_hub();
    let link_id = sim.reserve_node();

    let mut link = PerUserLink::new(uniform_trace(2000, 20)); // 24 Mbit/s
                                                              // user 1: ABC with its own ABC router queue
    link.add_user(
        &[FlowId(1)],
        Box::new(AbcQdisc::new(AbcRouterConfig::default())),
    );
    // user 2: Cubic with a deep droptail (the bloater)
    link.add_user(&[FlowId(2)], Box::new(DropTail::new(1000)));

    for (flow, scheme) in [(1u32, Scheme::Abc), (2, Scheme::Cubic)] {
        let sender_id = sim.reserve_node();
        let sink_id = sim.reserve_node();
        let q = SimDuration::from_millis(25);
        let fwd = Route::new(vec![(link_id, q), (sink_id, q)]);
        let back = Route::new(vec![(sender_id, SimDuration::from_millis(50))]);
        sim.install_node(
            sink_id,
            Box::new(Sink::new(FlowId(flow), back).with_metrics(hub.clone())),
        );
        sim.install_node(
            sender_id,
            Box::new(Sender::new(
                FlowId(flow),
                scheme.make_cc(),
                fwd,
                TrafficSource::Backlogged,
            )),
        );
    }
    sim.install_node(link_id, Box::new(link.with_metrics("cell", hub.clone())));

    hub.borrow_mut()
        .set_epoch(SimTime::ZERO + SimDuration::from_secs(10));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));

    let h = hub.borrow();
    let window = SimDuration::from_secs(50);
    let abc_tput = h.flows[&FlowId(1)].throughput_over(window) / 1e6;
    let cubic_tput = h.flows[&FlowId(2)].throughput_over(window) / 1e6;
    // round-robin scheduling: both get ~their fair 12 Mbit/s
    assert!(
        (abc_tput - cubic_tput).abs() / abc_tput.max(cubic_tput) < 0.2,
        "per-user fairness broken: ABC {abc_tput:.2} vs Cubic {cubic_tput:.2}"
    );
    // and the ABC user's *own* delay stays low despite the bloater next door
    let abc_delays: Vec<f64> = h.flows[&FlowId(1)]
        .delays_s
        .iter()
        .map(|d| d * 1e3)
        .collect();
    let cubic_delays: Vec<f64> = h.flows[&FlowId(2)]
        .delays_s
        .iter()
        .map(|d| d * 1e3)
        .collect();
    let abc_p95 = abc_repro::netsim::stats::summarize(&abc_delays).p95;
    let cubic_p95 = abc_repro::netsim::stats::summarize(&cubic_delays).p95;
    assert!(
        abc_p95 < 160.0,
        "ABC per-user delay should stay low: p95 {abc_p95:.0} ms"
    );
    assert!(
        cubic_p95 > abc_p95 * 2.0,
        "the bloater should be the only one bloated: cubic {cubic_p95:.0} vs abc {abc_p95:.0}"
    );
}

/// §3.1.3: with equal accelerate fractions, steady-state windows equalize,
/// so throughput is inversely proportional to RTT. Two ABC flows with
/// 2:1 RTTs should see roughly 1:2 throughputs.
#[test]
fn abc_throughput_scales_inversely_with_rtt() {
    use abc_repro::netsim::link::{ConstantRate, SerialLink};
    use abc_repro::netsim::linkqueue::LinkQueue;
    use abc_repro::netsim::rate::Rate;

    let mut sim = Simulator::new();
    let hub = new_hub();
    let link_id = sim.reserve_node();
    for (flow, rtt_ms) in [(1u32, 60u64), (2, 120)] {
        let sender_id = sim.reserve_node();
        let sink_id = sim.reserve_node();
        let q = SimDuration::from_millis(rtt_ms / 4);
        let fwd = Route::new(vec![(link_id, q), (sink_id, q)]);
        let back = Route::new(vec![(sender_id, SimDuration::from_millis(rtt_ms / 2))]);
        sim.install_node(
            sink_id,
            Box::new(Sink::new(FlowId(flow), back).with_metrics(hub.clone())),
        );
        sim.install_node(
            sender_id,
            Box::new(Sender::new(
                FlowId(flow),
                Scheme::Abc.make_cc(),
                fwd,
                TrafficSource::Backlogged,
            )),
        );
    }
    sim.install_node(
        link_id,
        Box::new(
            LinkQueue::new(
                Scheme::Abc.make_qdisc(250),
                Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(24.0)))),
            )
            .with_metrics("bottleneck", hub.clone()),
        ),
    );
    hub.borrow_mut()
        .set_epoch(SimTime::ZERO + SimDuration::from_secs(60));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(240));
    let h = hub.borrow();
    let w = SimDuration::from_secs(180);
    let fast = h.flows[&FlowId(1)].throughput_over(w);
    let slow = h.flows[&FlowId(2)].throughput_over(w);
    let ratio = fast / slow;
    // same window → tput ∝ 1/RTT → expect ≈ 2; accept a generous band
    // (the AI term adds +1/RTT which slightly favors the short-RTT flow
    // beyond 2:1, and MIMD sloshing adds noise)
    assert!(
        (1.4..=3.2).contains(&ratio),
        "RTT-inverse throughput ratio {ratio:.2} (fast {:.2} / slow {:.2} Mbit/s)",
        fast / 1e6,
        slow / 1e6
    );
}

/// The per-user link's utilization accounting matches delivered bytes.
#[test]
fn per_user_link_opportunity_accounting() {
    let mut sim = Simulator::new();
    let hub = new_hub();
    let link_id = sim.reserve_node();
    let mut link = PerUserLink::new(uniform_trace(1000, 10));
    link.add_user(
        &[FlowId(1)],
        Box::new(AbcQdisc::new(AbcRouterConfig::default())),
    );
    let sender_id = sim.reserve_node();
    let sink_id = sim.reserve_node();
    let q = SimDuration::from_millis(25);
    let fwd = Route::new(vec![(link_id, q), (sink_id, q)]);
    let back = Route::new(vec![(sender_id, SimDuration::from_millis(50))]);
    sim.install_node(
        sink_id,
        Box::new(Sink::new(FlowId(1), back).with_metrics(hub.clone())),
    );
    sim.install_node(
        sender_id,
        Box::new(Sender::new(
            FlowId(1),
            Scheme::Abc.make_cc(),
            fwd,
            TrafficSource::Backlogged,
        )),
    );
    sim.install_node(link_id, Box::new(link.with_metrics("cell", hub.clone())));
    let end = SimTime::ZERO + SimDuration::from_secs(30);
    hub.borrow_mut()
        .set_epoch(SimTime::ZERO + SimDuration::from_secs(5));
    sim.run_until(end);
    {
        let l: &PerUserLink = sim
            .node(link_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        l.finalize_opportunity(end);
        // sanity: its qdisc interface is reachable
        assert_eq!(l.user_queue(0).len_pkts(), l.user_queue(0).len_pkts());
    }
    let h = hub.borrow();
    let util = h.links["cell"].utilization();
    assert!(
        util > 0.85,
        "single ABC user should fill the link: {util:.3}"
    );
}
