//! The committed example campaign files are equivalent to the built-in
//! presets they re-express — pinned by expansion comparison for all of
//! them and, for `tiny`, by a byte-identical store against the same
//! committed baseline the preset path is gated on.

use campaign::runner::{run_campaign, RunOptions};
use campaign::store::ResultsStore;
use campaign::{file, presets, Campaign};
use experiments::engine::Topology;
use experiments::figures::Scale;
use netsim::time::SimDuration;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/campaign → workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn example(name: &str, scale: Scale) -> Campaign {
    let path = repo_root().join("examples/campaigns").join(name);
    file::load(&path, scale).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Same axes (names, labels, order) and same surviving points.
fn assert_same_expansion(a: &Campaign, b: &Campaign) {
    assert_eq!(a.name, b.name);
    let (pa, pb) = (a.expand(), b.expand());
    assert_eq!(pa.len(), pb.len(), "{}: point count differs", a.name);
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.ordinal, y.ordinal, "{}: ordinal drifted", a.name);
        assert_eq!(x.coords, y.coords, "{}: coords drifted", a.name);
    }
}

#[test]
fn tiny_file_store_is_byte_identical_to_the_committed_baseline() {
    let campaign = example("tiny.toml", Scale::Tiny);
    let records = run_campaign(&campaign, &RunOptions::quiet());
    let store = ResultsStore::new(&campaign, records);
    let baseline_path = repo_root().join("ci/campaign-tiny-baseline.jsonl");
    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));
    assert_eq!(
        store.to_jsonl(),
        baseline,
        "the TOML-expressed tiny campaign no longer reproduces the baseline store"
    );
}

#[test]
fn tiny_file_matches_the_preset_at_every_scale() {
    // The preset ignores scale; the file has no [scale.*] tables.
    for scale in [Scale::Full, Scale::Fast, Scale::Tiny] {
        assert_same_expansion(
            &example("tiny.toml", scale),
            &presets::by_name("tiny", scale).unwrap(),
        );
    }
}

#[test]
fn rtt_grid_file_matches_the_preset_below_full_scale() {
    // At Full the preset swaps in the 12-scheme lineup, which a fixed
    // file list intentionally doesn't follow (see the file's comments).
    for scale in [Scale::Fast, Scale::Tiny] {
        assert_same_expansion(
            &example("rtt-grid.toml", scale),
            &presets::by_name("rtt-grid", scale).unwrap(),
        );
    }
}

#[test]
fn web_load_grid_file_matches_the_preset() {
    for scale in [Scale::Full, Scale::Fast, Scale::Tiny] {
        assert_same_expansion(
            &example("web-load-grid.toml", scale),
            &presets::by_name("web-load-grid", scale).unwrap(),
        );
    }
}

#[test]
fn web_load_grid_file_point_reproduces_the_preset_report() {
    // Coords equality says the sweeps line up; this pins that a
    // file-built spec also *executes* identically — workload literal
    // included — by comparing one cell's full report bitwise.
    let from_file = example("web-load-grid.toml", Scale::Tiny);
    let preset = presets::by_name("web-load-grid", Scale::Tiny).unwrap();
    let (pf, pp) = (from_file.expand(), preset.expand());
    let engine = experiments::engine::ScenarioEngine::with_threads(1);
    assert_eq!(
        engine.run(&pf[0].spec),
        engine.run(&pp[0].spec),
        "file-built web workload spec diverged from the preset"
    );
}

#[test]
fn every_committed_example_loads_at_every_scale() {
    let dir = repo_root().join("examples/campaigns");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/campaigns exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "toml") {
            seen += 1;
            for scale in [Scale::Full, Scale::Fast, Scale::Tiny] {
                let c =
                    file::load(&path, scale).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                assert!(
                    !c.expand().is_empty(),
                    "{} expands to nothing",
                    path.display()
                );
            }
        }
    }
    assert!(
        seen >= 3,
        "expected ≥3 committed example campaigns, found {seen}"
    );
}

#[test]
fn malformed_files_fail_with_line_and_column() {
    // End-to-end diagnostics through the public loader (the parser and
    // schema layers carry many more negative cases in their unit tests).
    let cases: &[(&str, &str, usize)] = &[
        ("a = [1, 2\n", "unclosed array", 1),
        (
            "[campaign]\nname = \"x\"\n[base]\nrtt = 20\n",
            "unknown key `rtt`",
            4,
        ),
        (
            "[campaign]\nname = \"x\"\n[[axis]]\nname = \"s\"\nschemes = [\"Tahoe\"]\n",
            "unknown scheme",
            5,
        ),
        (
            "[campaign]\nname = \"x\"\n[base]\nworkloads = [{ web = { load = 0.5 } }]\n",
            "needs `link_mbps`",
            4,
        ),
        (
            "[campaign]\nname = \"x\"\n[base]\ntopology = { parking_lot = [{ link = { constant_mbps = 12.0 }, qdisc = \"red\" }] }\n",
            "unknown hop qdisc",
            4,
        ),
        (
            "[campaign]\nname = \"x\"\n[base]\ntopology = { wifi = { mcs = { fixed = 12 }, ap_buffer_pkts = 100 } }\n",
            "MCS index in 0..=7",
            4,
        ),
        (
            "[campaign]\nname = \"x\"\n[base]\nqdisc = { abc = { eta = 2.0 } }\n",
            "`eta` must be in (0, 1]",
            4,
        ),
    ];
    for (text, needle, line) in cases {
        let err = file::from_str(text, Scale::Tiny).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        assert!(
            msg.contains(&format!("line {line}")),
            "{msg:?} not anchored to line {line}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// An asymmetric-link spec survives the whole chain: TOML text →
    /// compiled `ScenarioSpec` (rates and one-way delays intact) →
    /// executed store record → JSONL → reloaded record, unchanged.
    #[test]
    fn asymmetric_spec_roundtrips_toml_to_store_record(
        down_mbps in 2u32..=8,
        up_mbps in 1u32..=4,
        down_delay_ms in 5u64..=60,
        up_delay_ms in 5u64..=60,
        seed in 1u64..=4,
    ) {
        let text = format!(
            "[campaign]\nname = \"asym-prop\"\n[base]\nscheme = \"ABC-Cubic\"\n\
             topology = {{ asymmetric = {{ down = {{ constant_mbps = {down_mbps}.0 }}, \
             up = {{ constant_mbps = {up_mbps}.0 }}, down_delay_ms = {down_delay_ms}, \
             up_delay_ms = {up_delay_ms} }} }}\n\
             duration_s = 1\nwarmup_s = 0\nseed = {seed}\nflows = 1\n",
        );
        let c = file::from_str(&text, Scale::Tiny).unwrap();
        // TOML → ScenarioSpec
        match &c.base.topology {
            Topology::Asymmetric { down, up, down_delay, up_delay } => {
                prop_assert_eq!(
                    down.nominal_rate(),
                    netsim::rate::Rate::from_mbps(down_mbps as f64)
                );
                prop_assert_eq!(
                    up.nominal_rate(),
                    netsim::rate::Rate::from_mbps(up_mbps as f64)
                );
                prop_assert_eq!(*down_delay, SimDuration::from_millis(down_delay_ms));
                prop_assert_eq!(*up_delay, SimDuration::from_millis(up_delay_ms));
            }
            other => prop_assert!(false, "expected asymmetric, got {other:?}"),
        }
        prop_assert_eq!(c.base.seed, seed);
        // ScenarioSpec → store record: runs, respects the data-direction
        // cap, and survives store serialization byte-for-byte.
        let records = run_campaign(&c, &RunOptions::quiet());
        prop_assert_eq!(records.len(), 1);
        prop_assert!(
            records[0].report.total_tput_mbps <= down_mbps as f64 + 0.5,
            "tput {} exceeds the {down_mbps} Mbit/s data-direction bottleneck",
            records[0].report.total_tput_mbps
        );
        let store = ResultsStore::new(&c, records.clone());
        let back = ResultsStore::from_jsonl(&store.to_jsonl()).unwrap();
        prop_assert_eq!(back.records, records);
    }
}
