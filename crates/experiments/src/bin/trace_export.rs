//! Export the built-in synthetic cellular traces as Mahimahi-format files
//! (one delivery-opportunity timestamp in ms per line), so they can be
//! used with real Mahimahi or inspected directly.
//!
//! ```text
//! cargo run --release -p experiments --bin trace_export [out_dir]
//! ```

use std::fs::{self, File};
use std::io::BufWriter;

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "traces".to_string());
    fs::create_dir_all(&out_dir)?;
    for trace in cellular::all_builtin() {
        let path = format!("{out_dir}/{}.pps", trace.name.to_lowercase());
        let f = File::create(&path)?;
        trace.write_mahimahi(BufWriter::new(f))?;
        println!(
            "{path}: {} opportunities over {:.0} s, mean {:.2} Mbit/s",
            trace.opportunities.len(),
            trace.duration().as_secs_f64(),
            trace.mean_rate().mbps()
        );
    }
    Ok(())
}
