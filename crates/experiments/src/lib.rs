#![warn(missing_docs)]

//! # experiments — the scenario engine and per-figure/table harnesses
//!
//! [`engine`] is the chassis: a declarative [`ScenarioSpec`] executed
//! (serially or in parallel) by the [`ScenarioEngine`] — see its module
//! docs for the spec → engine → report pipeline. [`scenario`], [`topos`],
//! and [`wifi`] are thin presets that denote specs; [`figures`] holds the
//! per-figure generators of the paper's evaluation (the matrix-shaped
//! sweeps — Table 1, Figs. 8/9/15/16/18 — are campaign-backed and live in
//! the `campaign` crate, whose `figures::all()` is the complete index).

pub mod engine;
pub mod figures;
pub mod report;
pub mod scenario;
pub mod scheme;
pub mod topos;
pub mod wifi;

pub use engine::{
    BuiltScenario, FlowSchedule, FlowSpec, PointRun, PoissonShortFlows, QdiscSpec, ScenarioEngine,
    ScenarioSpec, Topology, WorkloadEntry,
};
pub use report::{downsample, sparkline, AppReport, Report};
pub use scenario::{CellScenario, LinkSpec};
pub use scheme::{Scheme, CELLULAR_LINEUP, EXPLICIT_LINEUP, WIFI_LINEUP};
pub use topos::{CoexistResult, CoexistScenario, CrossTraffic, MixedPathScenario, TwoHopScenario};
pub use wifi::{estimator_accuracy, McsSpec, WifiScenario};
