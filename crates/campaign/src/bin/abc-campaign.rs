//! `abc-campaign` — run, inspect, and gate declarative scenario sweeps.
//!
//! ```text
//! abc-campaign list
//! abc-campaign expand tiny
//! abc-campaign expand --file examples/campaigns/tiny.toml
//! abc-campaign run tiny --out tiny.jsonl
//! abc-campaign run --file my-sweep.toml --scale fast --jobs 8
//! abc-campaign export tiny.jsonl
//! abc-campaign export tiny.jsonl --csv
//! abc-campaign diff baseline.jsonl candidate.jsonl
//! abc-campaign bench-diff BENCH_netsim.json
//! abc-campaign run tiny --runlog runlog.jsonl --profile
//! abc-campaign trace-export runlog.jsonl -o trace.json
//! abc-campaign report runlog.jsonl --telemetry-dir telemetry/
//! ```
//!
//! `run` writes a schema-versioned JSONL store that is bit-identical
//! across reruns and worker-pool sizes; `diff` exits non-zero when the
//! candidate regresses against the baseline. Campaigns come from the
//! built-in presets or from a TOML file (`--file`, format reference in
//! `docs/campaign-file.md`); every malformed-input path exits 2 through
//! one `fail` helper, so flag typos and campaign-file errors report
//! uniformly.

use campaign::aggregate;
use campaign::diff::{diff, DiffConfig};
use campaign::presets;
use campaign::runlog::{RunLedger, RunLogConfig};
use campaign::runner::RunOptions;
use campaign::store::{self, ResultsStore};
use experiments::figures::Scale;
use std::fmt::Display;

/// Malformed input — a flag, a preset name, a campaign file, a store —
/// always reports and exits through here, with one format and one exit
/// code (2). Exit 1 is reserved for the diff gate's "regression found".
fn fail(msg: impl Display) -> ! {
    eprintln!("abc-campaign: {msg}");
    std::process::exit(2)
}

fn usage() -> ! {
    eprintln!(
        "abc-campaign — declarative sweep orchestration for the ABC reproduction

USAGE:
  abc-campaign list [--file F]                   built-in presets (or a file's campaign)
  abc-campaign expand <preset|--file F> [--scale S]
                                                 show the points without running
  abc-campaign run <preset|--file F> [options]   execute and store results
  abc-campaign export <store.jsonl> [--csv] [--over AXIS]
                                                 aggregate a stored run
  abc-campaign merge <shard.jsonl>... [--out F]  stitch shard stores into one
  abc-campaign diff <baseline.jsonl> <candidate.jsonl> [options]
                                                 regression gate (exit 1 on regression)
  abc-campaign bench-diff <BENCH_*.json> [--threshold X] [--json]
                                                 gate a bench trajectory's newest entry
                                                 against the previous one (exit 1 when a
                                                 *_per_sec / *_ns_per_op metric moves more
                                                 than X in the bad direction; default 0.2;
                                                 --json prints a machine-readable report)
  abc-campaign dynamics <sidecar.jsonl>          render the control-law timeline (marks,
                                                 token level, qdelay, cwnd) from a
                                                 telemetry sidecar — no re-simulation
  abc-campaign trace-export <runlog.jsonl> [-o trace.json]
                                                 convert a run ledger to Chrome
                                                 trace-event JSON (open in Perfetto or
                                                 chrome://tracing)
  abc-campaign report <runlog.jsonl> [--telemetry-dir d/]
                                                 run-health summary from a ledger: wall
                                                 breakdown, worker utilization,
                                                 stragglers, retry/error rollup; with
                                                 --telemetry-dir, also aggregates the
                                                 per-point sidecars by axis value

CAMPAIGN SOURCE:
  <preset>                 a built-in (see `abc-campaign list`)
  --file <campaign.toml>   a user-defined campaign file
                           (format reference: docs/campaign-file.md;
                           examples: examples/campaigns/)

RUN OPTIONS:
  --scale full|fast|tiny   sweep scale (default full)
  --jobs <n>               worker pool size (default: $ABC_JOBS, else all cores)
  --chunk <n>              scenarios per dispatch wave (default 32)
  --out <file>             store path (default campaign-<preset>.jsonl)
  --shard <k>/<n>          run only the ordinal-stable k-th of n slices
                           (k in 1..=n); `merge` stitches the shard stores
                           back into the unsharded run, byte for byte
  --resume                 reuse records already in --out (matching header)
                           and execute only the missing points; invoke with
                           the SAME --scale (and --shard) as the
                           interrupted run (the header records axes, not
                           scale)
  --telemetry-dir <d>      write one telemetry sidecar per point to d/
                           (<ordinal>.jsonl; the results store is unaffected)
  --keep-going             keep executing the remaining points after one
                           fails; every failure is stored as a structured
                           error record either way, and --resume
                           re-attempts exactly the failed points
  --watchdog-budget <s>    wall-clock budget per point (seconds, may be
                           fractional); a point exceeding it is cancelled
                           and stored as a watchdog error instead of
                           hanging the campaign
  --retries <n>            extra attempts for a panicking point before it
                           is recorded as failed (default 1)
  --runlog <file>          write the wall-clock run ledger (abc-runlog/v1
                           JSONL: per-point spans, waves, store flushes)
                           to this file; with --telemetry-dir the ledger
                           defaults to <dir>/runlog.jsonl. The results
                           store stays byte-identical either way.
  --profile                run every point with the self-profiler on and
                           record per-point phase fractions in the run
                           ledger (store bytes are unaffected)
  --quiet                  no progress on stderr

EXIT CODES:
  0  success        1  diff/bench-diff regression found
  2  malformed input (flags, campaign files, stores)
  3  run completed but one or more points failed (see the store's
     error records; rerun with --resume once the cause is fixed)

DIFF OPTIONS:
  --util-drop <x>          absolute utilization drop that fails (default 0.05)
  --delay-rise <x>         relative p95-delay rise that fails (default 0.25)
  --tput-drop <x>          relative throughput drop that fails (default 0.10)"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = match get("--scale").as_deref() {
        None | Some("full") => Scale::Full,
        Some("fast") => Scale::Fast,
        Some("tiny") => Scale::Tiny,
        Some(other) => fail(format!("unknown scale {other:?} (full|fast|tiny)")),
    };
    let positional: Vec<&String> = {
        // flag values must not be mistaken for positionals
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") || a.as_str() == "-o" {
                    skip_next = !matches!(
                        a.as_str(),
                        "--csv" | "--quiet" | "--resume" | "--json" | "--keep-going" | "--profile"
                    );
                    return false;
                }
                true
            })
            .collect()
    };
    let Some(command) = positional.first() else {
        usage()
    };

    let file = get("--file");

    match command.as_str() {
        "list" => {
            if let Some(path) = &file {
                let campaign = load_file(path, scale);
                let points = campaign.expand();
                println!(
                    "{}  [{} point(s) at this scale, {} unfiltered]",
                    campaign.name,
                    points.len(),
                    campaign.size_unfiltered()
                );
                for axis in &campaign.axes {
                    println!("  axis {:<12} {}", axis.name, axis.labels().join(", "));
                }
                for f in &campaign.filters {
                    println!("  filter {}", f.name);
                }
            } else {
                println!("{:<18} DESCRIPTION", "PRESET");
                for (name, desc, build) in presets::all() {
                    let n = build(Scale::Tiny).expand().len();
                    println!("{name:<18} {desc}  [{n} points at --scale tiny]");
                }
            }
        }
        "expand" => {
            let campaign = build_campaign(positional.get(1), &file, scale);
            let points = campaign.expand();
            println!(
                "# campaign {:?}: {} point(s) ({} unfiltered)",
                campaign.name,
                points.len(),
                campaign.size_unfiltered()
            );
            for p in &points {
                println!("{:>6}  {}", p.ordinal, p.coords.key());
            }
        }
        "run" => {
            let campaign = build_campaign(positional.get(1), &file, scale);
            let shard = get("--shard").map(|s| parse_shard(&s));
            let scale_name = match scale {
                Scale::Full => "full",
                Scale::Fast => "fast",
                Scale::Tiny => "tiny",
            };
            // Explicit --runlog wins; --telemetry-dir alone gets the
            // ledger beside the sidecars. Built here (not in the runner)
            // so the header carries the scale/shard the CLI resolved.
            let runlog = get("--runlog")
                .map(std::path::PathBuf::from)
                .or_else(|| {
                    get("--telemetry-dir").map(|d| std::path::PathBuf::from(d).join("runlog.jsonl"))
                })
                .map(|p| {
                    RunLogConfig::new(p)
                        .with_scale(Some(scale_name.to_string()))
                        .with_shard(shard)
                });
            let opts = RunOptions {
                jobs: get("--jobs").map(|x| parse_flag("--jobs", &x)),
                chunk: get("--chunk").map_or(32, |x| parse_flag("--chunk", &x)),
                progress: !args.iter().any(|a| a == "--quiet"),
                telemetry_dir: get("--telemetry-dir").map(std::path::PathBuf::from),
                keep_going: args.iter().any(|a| a == "--keep-going"),
                retries: get("--retries").map_or(1, |x| match x.parse::<u32>() {
                    Ok(n) => n,
                    Err(_) => fail(format!("--retries needs a non-negative integer, got {x:?}")),
                }),
                watchdog: get("--watchdog-budget").map(|x| parse_budget(&x)),
                runlog,
                profile: args.iter().any(|a| a == "--profile"),
            };
            let out = get("--out").unwrap_or_else(|| match shard {
                Some((k, n)) => format!("campaign-{}.shard-{k}-of-{n}.jsonl", campaign.name),
                None => format!("campaign-{}.jsonl", campaign.name),
            });
            let resume = args.iter().any(|a| a == "--resume");

            // Reusable records from an interrupted (or complete) store.
            let prior: Vec<campaign::runner::RunRecord> =
                if resume && std::path::Path::new(&out).exists() {
                    let prior = match ResultsStore::load_allow_partial(&out) {
                        Ok(s) => s,
                        Err(e) => fail(format!("cannot load {out}: {e}")),
                    };
                    // An interrupted store must describe the same sweep: same
                    // campaign name, axes, and filters (record count may differ).
                    let expect = store::header_for(&campaign, 0);
                    if prior.header.campaign != expect.campaign
                        || prior.header.axes != expect.axes
                        || prior.header.filters != expect.filters
                    {
                        fail(format!(
                            "cannot resume: {out} was produced by a different campaign \
                             (header mismatch); rerun without --resume or pick another --out"
                        ));
                    }
                    prior.records
                } else {
                    Vec::new()
                };
            let reused = prior.len();

            // Stream the store to disk as records complete, so an
            // interrupted run leaves a valid partial store behind. Fresh
            // runs stream straight to `out` (there is nothing to lose);
            // resumed runs stream to a temp sibling and rename on success,
            // so a second interruption never loses the prior partial.
            let target = if reused > 0 {
                format!("{out}.resume-tmp")
            } else {
                out.clone()
            };
            let sink = match std::fs::File::create(&target) {
                Ok(f) => f,
                Err(e) => fail(format!("cannot write {target}: {e}")),
            };
            let mut w = std::io::BufWriter::new(sink);
            let tally = match campaign::runner::run_campaign_streaming_sharded(
                &campaign, &opts, prior, shard, &mut w,
            ) {
                Ok(t) => t,
                Err(e) => fail(format!("cannot write {target}: {e}")),
            };
            drop(w);
            if target != out {
                if let Err(e) = std::fs::rename(&target, &out) {
                    fail(format!("cannot move {target} into place: {e}"));
                }
            }
            if resume && opts.progress {
                eprintln!(
                    "[abc-campaign] resumed {out}: {} record(s) reused, {} executed",
                    reused,
                    tally.lines() - reused
                );
            }
            eprintln!(
                "[abc-campaign] wrote {} record(s) to {out} (schema {})",
                tally.lines(),
                store::SCHEMA
            );
            // Point failures are data (the store holds their error
            // records), but the run as a whole did not succeed: exit 3 so
            // CI notices, distinct from exit 1 (regression gates) and
            // exit 2 (malformed input).
            if tally.errors > 0 {
                eprintln!(
                    "[abc-campaign] {} point(s) failed — structured error records are in {out}; \
                     rerun with --resume to re-attempt them",
                    tally.errors
                );
                std::process::exit(3);
            }
        }
        "export" => {
            let store = load(positional.get(1));
            if args.iter().any(|a| a == "--csv") {
                print!("{}", aggregate::render_csv(&store.records));
            } else {
                let over = get("--over").unwrap_or_else(|| "seed".into());
                let aggs = aggregate::aggregate(&store.records, &over);
                println!(
                    "# campaign {:?} — {} record(s)\n",
                    store.header.campaign, store.header.points
                );
                print!("{}", aggregate::render_table(&aggs, &over));
                println!();
                print!("{}", aggregate::render_rollup(&store.records));
            }
        }
        "merge" => {
            if positional.len() < 2 {
                fail("merge needs at least one shard store");
            }
            let stores: Vec<ResultsStore> = positional[1..].iter().map(|p| load(Some(p))).collect();
            let merged = match store::merge_stores(&stores) {
                Ok(m) => m,
                Err(e) => fail(format!("cannot merge: {e}")),
            };
            let out = get("--out").unwrap_or_else(|| "campaign-merged.jsonl".into());
            if let Err(e) = merged.save(&out) {
                fail(format!("cannot write {out}: {e}"));
            }
            eprintln!(
                "[abc-campaign] merged {} store(s) → {out}: {} record(s) (schema {})",
                stores.len(),
                merged.records.len(),
                store::SCHEMA
            );
        }
        "diff" => {
            let baseline = load(positional.get(1));
            let candidate = load(positional.get(2));
            let cfg = DiffConfig {
                util_drop: get("--util-drop")
                    .and_then(|x| x.parse().ok())
                    .unwrap_or(DiffConfig::default().util_drop),
                delay_rise: get("--delay-rise")
                    .and_then(|x| x.parse().ok())
                    .unwrap_or(DiffConfig::default().delay_rise),
                tput_drop: get("--tput-drop")
                    .and_then(|x| x.parse().ok())
                    .unwrap_or(DiffConfig::default().tput_drop),
                ..DiffConfig::default()
            };
            let report = diff(&baseline, &candidate, &cfg);
            print!("{}", report.render());
            if report.has_regressions() {
                std::process::exit(1);
            }
        }
        "bench-diff" => {
            let Some(path) = positional.get(1) else {
                usage()
            };
            let threshold = get("--threshold").map_or(0.2, |x| match x.parse::<f64>() {
                Ok(t) => t,
                Err(_) => fail(format!("--threshold needs a number, got {x:?}")),
            });
            let text = match std::fs::read_to_string(path.as_str()) {
                Ok(t) => t,
                Err(e) => fail(format!("cannot read {path}: {e}")),
            };
            let trajectory = match campaign::json::parse(&text) {
                Ok(v) => v,
                Err(e) => fail(format!("{path}: {e}")),
            };
            let as_json = args.iter().any(|a| a == "--json");
            match campaign::bench_diff::bench_diff(&trajectory, threshold) {
                Ok(Some(report)) => {
                    if as_json {
                        println!("{}", report.render_json());
                    } else {
                        print!("{}", report.render());
                    }
                    if report.has_regressions() {
                        std::process::exit(1);
                    }
                }
                Ok(None) => {
                    if as_json {
                        println!("{{\"threshold\":{threshold},\"regressed\":false,\"deltas\":[]}}");
                    } else {
                        println!("bench-diff: {path} has fewer than two entries; nothing to gate");
                    }
                }
                Err(e) => fail(format!("{path}: {e}")),
            }
        }
        "trace-export" => {
            let Some(path) = positional.get(1) else {
                usage()
            };
            let ledger = load_ledger(path);
            let out = get("-o")
                .or_else(|| get("--out"))
                .unwrap_or_else(|| "trace.json".into());
            let trace = campaign::trace::chrome_trace(&ledger);
            if let Err(e) = std::fs::write(&out, trace) {
                fail(format!("cannot write {out}: {e}"));
            }
            eprintln!(
                "[abc-campaign] wrote {out}: {} point span(s), {} wave(s), {} flush(es) \
                 (open in https://ui.perfetto.dev or chrome://tracing)",
                ledger.points.len(),
                ledger.waves.len(),
                ledger.flushes.len()
            );
        }
        "report" => {
            let Some(path) = positional.get(1) else {
                usage()
            };
            let ledger = load_ledger(path);
            let dir = get("--telemetry-dir").map(std::path::PathBuf::from);
            match campaign::report::render_report(&ledger, dir.as_deref()) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(e),
            }
        }
        "dynamics" => {
            let Some(path) = positional.get(1) else {
                usage()
            };
            let sidecar = match std::fs::read_to_string(path.as_str()) {
                Ok(t) => t,
                Err(e) => fail(format!("cannot read {path}: {e}")),
            };
            match campaign::dynamics::render_dynamics(&sidecar) {
                Ok(fig) => print!("{fig}"),
                Err(e) => fail(format!("{path}: {e}")),
            }
        }
        _ => usage(),
    }
}

/// `--shard k/n` with `1 ≤ k ≤ n`.
fn parse_shard(value: &str) -> (usize, usize) {
    let parsed = value.split_once('/').and_then(|(k, n)| {
        let k = k.trim().parse::<usize>().ok()?;
        let n = n.trim().parse::<usize>().ok()?;
        (n >= 1 && (1..=n).contains(&k)).then_some((k, n))
    });
    match parsed {
        Some(s) => s,
        None => fail(format!("--shard needs k/n with 1 <= k <= n, got {value:?}")),
    }
}

/// `--watchdog-budget` seconds: a positive (possibly fractional) number.
fn parse_budget(value: &str) -> std::time::Duration {
    match value.parse::<f64>() {
        Ok(s) if s > 0.0 && s.is_finite() => std::time::Duration::from_secs_f64(s),
        _ => fail(format!(
            "--watchdog-budget needs a positive number of seconds, got {value:?}"
        )),
    }
}

/// A flag value that must be a positive integer — a typo must not
/// silently fall back to a default.
fn parse_flag(flag: &str, value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => fail(format!("{flag} needs a positive integer, got {value:?}")),
    }
}

/// The campaign a command acts on: a `--file` campaign file, or a named
/// built-in preset. Giving both (or neither) is an error.
fn build_campaign(
    name: Option<&&String>,
    file: &Option<String>,
    scale: Scale,
) -> campaign::Campaign {
    match (name, file) {
        (Some(name), Some(_)) => fail(format!(
            "both a preset ({name:?}) and --file given; pick one"
        )),
        (None, Some(path)) => load_file(path, scale),
        (Some(name), None) => match presets::by_name(name, scale) {
            Some(c) => c,
            None => fail(format!(
                "unknown preset {name:?}; `abc-campaign list` shows the built-ins, \
                 --file <campaign.toml> loads your own"
            )),
        },
        (None, None) => usage(),
    }
}

/// Load a campaign file, reporting parse errors with their line/column.
fn load_file(path: &str, scale: Scale) -> campaign::Campaign {
    match campaign::file::load(path, scale) {
        Ok(c) => c,
        Err(e) => fail(format!("{path}: {e}")),
    }
}

/// Load a run ledger, exiting 2 with the offending line on malformed input.
fn load_ledger(path: &str) -> RunLedger {
    match RunLedger::load(std::path::Path::new(path)) {
        Ok(l) => l,
        Err(e) => fail(format!("cannot load {path}: {e}")),
    }
}

fn load(path: Option<&&String>) -> ResultsStore {
    let Some(path) = path else { usage() };
    match ResultsStore::load(path) {
        Ok(s) => s,
        Err(e) => fail(format!("cannot load {path}: {e}")),
    }
}
