//! The workload presets (web/RTC/ABR video) through the full campaign
//! pipeline: app-level metrics present, stores round-tripping exactly,
//! results bit-identical across 1/2/4/8-thread pools, and the new
//! figures rendering purely from stored records.

use campaign::figures::{render_rtc_coexist, render_video_qoe, render_web_fct};
use campaign::presets;
use campaign::runner::{run_campaign, RunOptions};
use campaign::store::ResultsStore;
use experiments::figures::Scale;

fn run_with_jobs(preset: &str, jobs: usize) -> ResultsStore {
    let campaign = presets::by_name(preset, Scale::Tiny).expect("preset exists");
    let records = run_campaign(&campaign, &RunOptions::quiet().with_jobs(Some(jobs)));
    ResultsStore::new(&campaign, records)
}

#[test]
fn workload_presets_round_trip_and_carry_app_metrics() {
    for preset in ["web-load-grid", "video-over-cellular", "rtc-coexist"] {
        let store = run_with_jobs(preset, 4);
        assert!(!store.records.is_empty(), "{preset} produced no records");
        for r in &store.records {
            let app = r
                .report
                .app
                .as_ref()
                .unwrap_or_else(|| panic!("{preset} record {} has no app metrics", r.coords));
            match preset {
                "web-load-grid" => {
                    let web = app.web.as_ref().expect("web metrics");
                    assert!(web.flows > 0, "{preset}: no web flows generated");
                }
                "video-over-cellular" => {
                    let v = app.video.as_ref().expect("video metrics");
                    assert!(v.chunks_total >= 1);
                }
                "rtc-coexist" => {
                    let rtc = app.rtc.as_ref().expect("rtc metrics");
                    assert!(rtc.pkts > 0, "{preset}: RTC stream delivered nothing");
                }
                _ => unreachable!(),
            }
        }
        // byte-exact round trip through the JSONL store
        let text = store.to_jsonl();
        let back = ResultsStore::from_jsonl(&text).unwrap_or_else(|e| panic!("{preset}: {e}"));
        assert_eq!(back, store, "{preset}: parse(write(store)) changed it");
        assert_eq!(back.to_jsonl(), text, "{preset}: re-serialization drifted");
    }
}

#[test]
fn workload_results_are_pool_size_invariant() {
    for preset in ["web-load-grid", "video-over-cellular", "rtc-coexist"] {
        let reference = run_with_jobs(preset, 1).to_jsonl();
        for jobs in [2usize, 4, 8] {
            assert_eq!(
                run_with_jobs(preset, jobs).to_jsonl(),
                reference,
                "{preset} differs between 1 and {jobs} workers"
            );
        }
    }
}

#[test]
fn workload_figures_render_purely_from_stored_records() {
    for (preset, render) in [
        (
            "web-load-grid",
            render_web_fct as fn(&[campaign::RunRecord]) -> String,
        ),
        ("video-over-cellular", render_video_qoe),
        ("rtc-coexist", render_rtc_coexist),
    ] {
        let campaign = presets::by_name(preset, Scale::Tiny).unwrap();
        let records = run_campaign(&campaign, &RunOptions::quiet());
        let direct = render(&records);
        assert!(!direct.is_empty());
        let store = ResultsStore::new(&campaign, records);
        let reloaded = ResultsStore::from_jsonl(&store.to_jsonl()).unwrap();
        assert_eq!(
            render(&reloaded.records),
            direct,
            "{preset} figure is not a pure function of stored records"
        );
    }
}

#[test]
fn bulk_only_records_serialize_without_an_app_field() {
    let store = {
        let campaign = presets::tiny(Scale::Tiny);
        let records = run_campaign(&campaign, &RunOptions::quiet());
        ResultsStore::new(&campaign, records)
    };
    assert!(
        !store.to_jsonl().contains("\"app\""),
        "bulk-only store grew an app field — the pinned baseline would break"
    );
}
