//! `docs/campaign-file.md` cannot drift from the implementation: every
//! ```toml fenced block in it must parse, and blocks that declare a
//! `[campaign]` must also compile into a `Campaign`.

use campaign::file::{self, toml};
use experiments::figures::Scale;
use std::path::Path;

/// The ```toml fenced blocks of a markdown document, with the line
/// each starts at (for error reporting).
fn toml_blocks(markdown: &str) -> Vec<(usize, String)> {
    let mut blocks = Vec::new();
    let mut current: Option<(usize, String)> = None;
    for (i, line) in markdown.lines().enumerate() {
        let fence = line.trim_start();
        match &mut current {
            None => {
                if fence == "```toml" {
                    current = Some((i + 2, String::new()));
                }
            }
            Some((_, body)) => {
                if fence == "```" {
                    blocks.push(current.take().expect("block open"));
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unclosed ```toml fence");
    blocks
}

#[test]
fn every_toml_snippet_in_the_format_reference_parses() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("docs/campaign-file.md");
    let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let blocks = toml_blocks(&doc);
    assert!(
        blocks.len() >= 10,
        "expected a reference full of examples, found {} toml blocks",
        blocks.len()
    );
    let mut full_campaigns = 0;
    for (line, body) in &blocks {
        // Every snippet must be valid TOML…
        toml::parse(body)
            .unwrap_or_else(|e| panic!("snippet at line {line} does not parse: {e}\n{body}"));
        // …and complete campaigns must compile end to end.
        if body.contains("[campaign]") {
            full_campaigns += 1;
            for scale in [Scale::Full, Scale::Fast, Scale::Tiny] {
                let c = file::from_str(body, scale).unwrap_or_else(|e| {
                    panic!("campaign snippet at line {line} does not compile: {e}\n{body}")
                });
                assert!(
                    !c.expand().is_empty(),
                    "campaign snippet at line {line} expands to nothing"
                );
            }
        }
    }
    assert!(
        full_campaigns >= 1,
        "the reference should contain at least one complete campaign"
    );
}
