//! Per-user cellular scheduling (§4.2).
//!
//! Cellular base stations schedule users from separate queues for
//! inter-user fairness; each user sees its own capacity and queuing delay,
//! so an ABC deployment computes a *per-user* target rate. This node
//! models that: one qdisc per user, a shared trace of delivery
//! opportunities handed out round-robin among backlogged users, and a
//! per-user capacity feed of `µ_total / active_users` — the quantity the
//! 3GPP scheduling interface exposes (the paper cites TS 132.450, which
//! defines per-user scheduled-throughput measurement over scheduled TTIs
//! only, i.e. it is accurate even for non-backlogged users).

use crate::trace::CellTrace;
use netsim::event::EventKind;
use netsim::metrics::Metrics;
use netsim::node::{Context, Node};
use netsim::packet::FlowId;
use netsim::queue::Qdisc;
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use std::collections::HashMap;

const TOK_OPP: u64 = 1;

/// A base-station downlink with per-user queues over one shared trace.
pub struct PerUserLink {
    trace: CellTrace,
    /// One qdisc per registered user, in registration order.
    queues: Vec<Box<dyn Qdisc>>,
    user_of_flow: HashMap<FlowId, usize>,
    /// Round-robin cursor over users.
    cursor: usize,
    /// An opportunity timer is armed for this instant.
    armed_for: Option<SimTime>,
    /// Timer generation; stale TOK_OPP firings are ignored so duplicate
    /// chains cannot arise (a packet arriving at the exact opportunity
    /// instant used to arm a second chain, which then doubled).
    timer_gen: u64,
    /// Activity window for counting active users (µ share estimation).
    activity: Vec<SimTime>,
    activity_window: SimDuration,
    tag: &'static str,
    metrics: Option<Metrics>,
    started_at: SimTime,
    pub delivered_pkts: u64,
}

impl PerUserLink {
    pub fn new(trace: CellTrace) -> Self {
        PerUserLink {
            trace,
            queues: Vec::new(),
            user_of_flow: HashMap::new(),
            cursor: 0,
            armed_for: None,
            timer_gen: 0,
            activity: Vec::new(),
            activity_window: SimDuration::from_millis(500),
            tag: "cell",
            metrics: None,
            started_at: SimTime::ZERO,
            delivered_pkts: 0,
        }
    }

    pub fn with_metrics(mut self, tag: &'static str, metrics: Metrics) -> Self {
        self.tag = tag;
        self.metrics = Some(metrics);
        self
    }

    /// Register a user with its own queueing discipline (e.g. a per-user
    /// ABC router); all of the user's flows share that queue.
    pub fn add_user(&mut self, flows: &[FlowId], qdisc: Box<dyn Qdisc>) -> usize {
        let idx = self.queues.len();
        self.queues.push(qdisc);
        self.activity.push(SimTime::ZERO);
        for f in flows {
            self.user_of_flow.insert(*f, idx);
        }
        idx
    }

    pub fn user_queue(&self, idx: usize) -> &dyn Qdisc {
        &*self.queues[idx]
    }

    fn next_opportunity(&self, t: SimTime) -> SimTime {
        let period = self.trace.period.as_nanos();
        let tn = t.as_nanos();
        let cycle = tn / period;
        let offset = SimDuration::from_nanos(tn % period);
        let idx = self.trace.opportunities.partition_point(|&o| o < offset);
        if idx < self.trace.opportunities.len() {
            SimTime::from_nanos(cycle * period + self.trace.opportunities[idx].as_nanos())
        } else {
            SimTime::from_nanos((cycle + 1) * period + self.trace.opportunities[0].as_nanos())
        }
    }

    /// Users that were backlogged recently (drives the per-user µ share).
    fn active_users(&self, now: SimTime) -> usize {
        let cutoff = now.saturating_sub(self.activity_window);
        self.activity
            .iter()
            .filter(|&&t| t >= cutoff)
            .count()
            .max(1)
    }

    /// Per-user capacity estimate: the whole link when alone, the fair
    /// share when contended.
    fn user_mu(&self, now: SimTime) -> Rate {
        let total = self.trace.rate_in_window(
            now.saturating_sub(SimDuration::from_millis(40)),
            SimDuration::from_millis(40),
        );
        total / self.active_users(now) as f64
    }

    fn arm(&mut self, ctx: &mut Context) {
        if self.armed_for.is_some() {
            return; // a live timer chain exists; it re-arms itself
        }
        if self.queues.iter().all(|q| q.is_empty()) {
            return; // idle: future opportunities are wasted, per Mahimahi
        }
        let at = self.next_opportunity(ctx.now() + SimDuration::from_nanos(1));
        self.armed_for = Some(at);
        self.timer_gen += 1;
        ctx.set_timer_at(at, TOK_OPP | (self.timer_gen << 8));
    }

    fn serve_opportunity(&mut self, ctx: &mut Context) {
        let now = ctx.now();
        self.armed_for = None;
        // round-robin to the next backlogged user
        let n = self.queues.len();
        let mu = self.user_mu(now);
        for step in 0..n {
            let u = (self.cursor + step) % n;
            if self.queues[u].is_empty() {
                continue;
            }
            self.cursor = (u + 1) % n;
            self.queues[u].on_capacity(mu, now);
            // one opportunity delivers up to one MTU of this user's queue
            let mut budget = netsim::packet::MTU_BYTES as i64;
            while budget > 0 {
                match self.queues[u].peek_size() {
                    Some(sz) if (sz as i64) <= budget => {
                        let Some(pkt) = self.queues[u].dequeue(now) else {
                            break;
                        };
                        budget -= pkt.size as i64;
                        self.delivered_pkts += 1;
                        if let Some(m) = &self.metrics {
                            m.borrow_mut().on_link_dequeue(
                                self.tag,
                                now,
                                now.since(pkt.enqueued_at),
                                pkt.size,
                            );
                        }
                        if pkt.next_hop().is_some() {
                            ctx.forward_boxed(pkt);
                        } else {
                            ctx.recycle(pkt);
                        }
                    }
                    _ => break,
                }
            }
            break;
        }
        self.arm(ctx);
    }

    /// Total opportunity bits over `[a, b]` (utilization denominator).
    pub fn opportunity_bits(&self, a: SimTime, b: SimTime) -> f64 {
        let period = self.trace.period.as_nanos();
        let count_before = |t: u64| -> u64 {
            let cycles = t / period;
            let off = SimDuration::from_nanos(t % period);
            let within = self.trace.opportunities.partition_point(|&o| o < off) as u64;
            cycles * self.trace.opportunities.len() as u64 + within
        };
        (count_before(b.as_nanos()) - count_before(a.as_nanos())) as f64
            * netsim::packet::MTU_BYTES as f64
            * 8.0
    }

    pub fn finalize_opportunity(&self, end: SimTime) {
        if let Some(m) = &self.metrics {
            let epoch = m.borrow().epoch();
            let bits = self.opportunity_bits(epoch.max(self.started_at), end);
            m.borrow_mut().set_link_opportunity(self.tag, bits);
        }
    }
}

impl Node for PerUserLink {
    netsim::impl_node_downcast!();

    fn start(&mut self, ctx: &mut Context) {
        self.started_at = ctx.now();
    }

    fn handle(&mut self, ctx: &mut Context, event: EventKind) {
        match event {
            EventKind::Deliver(pkt) => {
                let now = ctx.now();
                let Some(&u) = self.user_of_flow.get(&pkt.flow) else {
                    debug_assert!(false, "flow {:?} not registered", pkt.flow);
                    return;
                };
                self.activity[u] = now;
                let ok = self.queues[u].enqueue(pkt, now);
                if !ok {
                    if let Some(m) = &self.metrics {
                        m.borrow_mut().on_link_drop(self.tag, now);
                    }
                }
                self.arm(ctx);
            }
            EventKind::Timer(tok) if tok & 0xff == TOK_OPP => {
                if tok >> 8 == self.timer_gen {
                    self.serve_opportunity(ctx);
                }
            }
            EventKind::Timer(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, Feedback, NodeId, Packet, Route};
    use netsim::queue::DropTail;
    use netsim::sim::Simulator;

    fn uniform_trace(pps: u64, secs: u64) -> CellTrace {
        let gap_ns = 1_000_000_000 / pps;
        CellTrace {
            name: "uniform".into(),
            opportunities: (0..pps * secs)
                .map(|i| SimDuration::from_nanos(i * gap_ns))
                .collect(),
            period: SimDuration::from_secs(secs),
        }
    }

    struct Recorder {
        per_flow: HashMap<FlowId, u64>,
    }

    impl Node for Recorder {
        netsim::impl_node_downcast!();
        fn handle(&mut self, _ctx: &mut Context, ev: EventKind) {
            if let EventKind::Deliver(p) = ev {
                *self.per_flow.entry(p.flow).or_insert(0) += 1;
            }
        }
    }

    struct Blaster {
        flow: FlowId,
        rate_pps: u64,
        link: NodeId,
        sink: NodeId,
        sent: u64,
        limit: u64,
    }

    impl Node for Blaster {
        netsim::impl_node_downcast!();
        fn start(&mut self, ctx: &mut Context) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn handle(&mut self, ctx: &mut Context, _ev: EventKind) {
            if self.sent >= self.limit {
                return;
            }
            let route = Route::new(vec![
                (self.link, SimDuration::ZERO),
                (self.sink, SimDuration::from_millis(1)),
            ]);
            ctx.forward(Packet {
                flow: self.flow,
                seq: self.sent,
                size: 1500,
                ecn: Ecn::NotEct,
                feedback: Feedback::None,
                abc_capable: false,
                sent_at: ctx.now(),
                retransmit: false,
                ack: None,
                route,
                hop: 0,
                enqueued_at: ctx.now(),
            });
            self.sent += 1;
            ctx.set_timer(SimDuration::from_nanos(1_000_000_000 / self.rate_pps), 0);
        }
    }

    #[test]
    fn two_backlogged_users_share_equally() {
        let mut sim = Simulator::new();
        let link_id = sim.reserve_node();
        let rec_id = sim.reserve_node();
        let mut link = PerUserLink::new(uniform_trace(1000, 10)); // 12 Mbit/s
        link.add_user(&[FlowId(1)], Box::new(DropTail::new(500)));
        link.add_user(&[FlowId(2)], Box::new(DropTail::new(500)));
        sim.install_node(link_id, Box::new(link));
        sim.install_node(
            rec_id,
            Box::new(Recorder {
                per_flow: HashMap::new(),
            }),
        );
        // both offer 2× their fair share
        for f in [1u32, 2] {
            sim.add_node(Box::new(Blaster {
                flow: FlowId(f),
                rate_pps: 1000,
                link: link_id,
                sink: rec_id,
                sent: 0,
                limit: 100_000,
            }));
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let rec: &Recorder = sim
            .node(rec_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        let a = rec.per_flow[&FlowId(1)] as f64;
        let b = rec.per_flow[&FlowId(2)] as f64;
        assert!((a - b).abs() / a.max(b) < 0.02, "unfair: {a} vs {b}");
        // the link should be fully used: ~1000 pps for 10 s total
        assert!(a + b > 9_500.0, "underused: {}", a + b);
    }

    #[test]
    fn lone_user_gets_whole_link() {
        let mut sim = Simulator::new();
        let link_id = sim.reserve_node();
        let rec_id = sim.reserve_node();
        let mut link = PerUserLink::new(uniform_trace(1000, 10));
        link.add_user(&[FlowId(1)], Box::new(DropTail::new(500)));
        link.add_user(&[FlowId(2)], Box::new(DropTail::new(500)));
        sim.install_node(link_id, Box::new(link));
        sim.install_node(
            rec_id,
            Box::new(Recorder {
                per_flow: HashMap::new(),
            }),
        );
        sim.add_node(Box::new(Blaster {
            flow: FlowId(1),
            rate_pps: 2000,
            link: link_id,
            sink: rec_id,
            sent: 0,
            limit: 100_000,
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let rec: &Recorder = sim
            .node(rec_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        assert!(
            rec.per_flow[&FlowId(1)] > 9_500,
            "lone user throttled: {}",
            rec.per_flow[&FlowId(1)]
        );
    }

    #[test]
    fn idle_opportunities_are_wasted() {
        let mut sim = Simulator::new();
        let link_id = sim.reserve_node();
        let rec_id = sim.reserve_node();
        let mut link = PerUserLink::new(uniform_trace(1000, 10));
        link.add_user(&[FlowId(1)], Box::new(DropTail::new(500)));
        sim.install_node(link_id, Box::new(link));
        sim.install_node(
            rec_id,
            Box::new(Recorder {
                per_flow: HashMap::new(),
            }),
        );
        // offer only 100 pps on a 1000-opportunity/s link
        sim.add_node(Box::new(Blaster {
            flow: FlowId(1),
            rate_pps: 100,
            link: link_id,
            sink: rec_id,
            sent: 0,
            limit: 100_000,
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let rec: &Recorder = sim
            .node(rec_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        let got = rec.per_flow[&FlowId(1)];
        assert!((got as i64 - 1000).abs() < 50, "delivered {got}");
    }
}
