//! Transport endpoints: the [`Sender`] (reliable, window- or rate-driven,
//! pluggable congestion control) and the per-flow [`Sink`] that echoes
//! feedback in ACKs.

use crate::event::EventKind;
use crate::metrics::Metrics;
use crate::node::{Context, Node, TimerId};
use crate::packet::{AckData, Ecn, Feedback, FlowId, Packet, Route, MTU_BYTES};
use crate::rate::Rate;
use crate::telemetry::{Scope, Signal};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::rc::Rc;

/// Everything a congestion controller may want to know about an ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Arrival time of the ACK at the sender.
    pub now: SimTime,
    /// RTT sample for this ACK; `None` when the acked packet was a
    /// retransmission (Karn's rule).
    pub rtt: Option<SimDuration>,
    /// Minimum RTT observed on this flow so far.
    pub min_rtt: SimDuration,
    /// Smoothed RTT (EWMA) as of this ACK.
    pub srtt: SimDuration,
    /// Wire bytes newly acknowledged by this ACK.
    pub acked_bytes: u32,
    /// ECN bits as received by the peer: `Accelerate`/`Brake` for ABC,
    /// `Ce` for legacy AQM marks.
    pub ecn_echo: Ecn,
    /// Explicit-scheme feedback echoed by the peer.
    pub feedback: Feedback,
    /// Packets still in flight after this ACK was processed.
    pub inflight_pkts: usize,
    /// Delivery-rate sample (BBR-style): delivered bytes between the acked
    /// packet's send time and now, over that interval.
    pub delivery_rate: Rate,
    /// One-way delay experienced by the acked data packet.
    pub one_way_delay: SimDuration,
}

/// How the sender releases packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Transmissions are triggered by ACK arrivals (window-based schemes).
    AckClocked,
    /// Transmissions are released by a pacing clock at this rate,
    /// still subject to the congestion window cap.
    Rate(Rate),
}

/// A pluggable congestion-control algorithm.
///
/// Implementations live in the `abc-core`, `baselines`, and `explicit`
/// crates; the sender is generic over all of them.
pub trait CongestionControl {
    /// Scheme name as it appears in reports and figures.
    fn name(&self) -> &'static str;

    /// Process an ACK (the common case — every algorithm reacts here).
    fn on_ack(&mut self, ev: &AckEvent);

    /// A loss was inferred via duplicate-ACK threshold. Called once per
    /// loss episode (per round trip), not once per lost packet.
    fn on_loss(&mut self, _now: SimTime) {}

    /// The retransmission timer fired.
    fn on_rto(&mut self, _now: SimTime) {}

    /// Current congestion window in packets (fractional windows allowed;
    /// the sender floors for admission).
    fn cwnd_pkts(&self) -> f64;

    /// How this scheme releases packets (ACK-clocked by default).
    fn pacing(&self) -> Pacing {
        Pacing::AckClocked
    }

    /// ECN codepoint stamped on outgoing data packets. ABC senders send
    /// `Accelerate`; ECN-capable legacy senders `Brake` (= ECT(0));
    /// non-ECN senders `NotEct`.
    fn outgoing_ecn(&self) -> Ecn {
        Ecn::NotEct
    }

    /// Explicit-feedback header stamped on outgoing data packets
    /// (XCP writes cwnd/rtt; RCP a rate request).
    fn outgoing_feedback(&mut self, _now: SimTime) -> Feedback {
        Feedback::None
    }

    /// Whether routers should classify this flow into the ABC queue.
    fn is_abc(&self) -> bool {
        false
    }

    /// ABC's dual windows `(w_abc, w_nonabc)`, for telemetry (Fig. 6 of
    /// the paper plots both). Non-ABC controllers return `None`.
    fn as_abc_windows(&self) -> Option<(f64, f64)> {
        None
    }
}

/// An application model driving a sender from *above* the transport — the
/// hook the `workload` crate's generators (ABR video clients, RTC sources)
/// plug into.
///
/// The sender polls [`available_bytes`](AppDriver::available_bytes) to
/// decide whether the app has data, consults
/// [`next_wakeup`](AppDriver::next_wakeup) to arm its app timer when the
/// source is exhausted, and reports cumulative delivered (ACKed) bytes via
/// [`on_progress`](AppDriver::on_progress) so request/response apps can
/// advance their own state machines (a video client picking the next
/// chunk's bitrate, say). All methods are pure functions of simulation
/// time and driver state, so driven flows stay bit-deterministic.
pub trait AppDriver: std::any::Any {
    /// Total bytes the application has made available to the transport up
    /// to `now`. Must be monotone non-decreasing in `now`.
    fn available_bytes(&mut self, now: SimTime) -> u64;

    /// The next instant at which more data may become available while the
    /// source is exhausted, or `None` if nothing will appear until
    /// [`on_progress`](AppDriver::on_progress) moves the state machine.
    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime>;

    /// The transport has cumulatively delivered (received ACKs for)
    /// `delivered_bytes` of application data. Called at least once per
    /// processed ACK; implementations must tolerate repeated calls with an
    /// unchanged value.
    fn on_progress(&mut self, now: SimTime, delivered_bytes: u64);

    /// Downcast support for post-run metric extraction.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable downcast support (mid-run parameter adjustment).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Application traffic pattern feeding the sender.
#[derive(Debug, Clone, Copy)]
pub enum TrafficSource {
    /// Always has data (iperf-style backlogged flow).
    Backlogged,
    /// Token bucket: data becomes available at `rate`, with at most
    /// `burst_bytes` accumulating while the flow is blocked.
    RateLimited {
        /// Sustained application data rate.
        rate: Rate,
        /// Bucket depth: bytes that may accumulate while blocked.
        burst_bytes: f64,
    },
    /// A flow of fixed total size; the sender stops offering data once
    /// everything has been handed to the transport.
    Finite {
        /// Total application bytes to transfer.
        bytes: u64,
    },
    /// Backlogged during `[0, on)`, silent during `[on, on+off)`, repeating.
    OnOff {
        /// Length of each talking burst.
        on: SimDuration,
        /// Length of each silence between bursts.
        off: SimDuration,
    },
}

/// Counters exposed for harnesses and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderStats {
    /// Data packets transmitted (including retransmissions).
    pub sent_pkts: u64,
    /// Wire bytes transmitted (including retransmissions).
    pub sent_bytes: u64,
    /// Data packets acknowledged.
    pub acked_pkts: u64,
    /// Wire bytes acknowledged.
    pub acked_bytes: u64,
    /// Packets retransmitted (dup-ACK or RTO recovery).
    pub retransmits: u64,
    /// Loss episodes inferred via the duplicate-ACK threshold.
    pub losses_detected: u64,
    /// Retransmission-timer expirations.
    pub rtos: u64,
    /// ACKs echoing the Accelerate codepoint.
    pub accel_acks: u64,
    /// ACKs echoing the Brake codepoint.
    pub brake_acks: u64,
}

#[derive(Debug, Clone, Copy)]
struct SentRecord {
    sent_at: SimTime,
    size: u32,
    retransmit: bool,
    /// Cumulative ACK passes observed; 3 ⇒ inferred lost.
    passed: u32,
    /// Sender's delivered-bytes counter when this packet left (for
    /// delivery-rate sampling).
    delivered_at_send: u64,
}

/// The in-flight window, ordered by sequence number. Sends append at the
/// back (seqs are monotone), ACKs pop at the front, so the common case is
/// O(1) ring-buffer traffic instead of B-tree rebalancing; retransmissions
/// and loss holes fall back to binary search.
#[derive(Debug, Default)]
struct SentWindow {
    items: VecDeque<(u64, SentRecord)>,
}

impl SentWindow {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn insert(&mut self, seq: u64, rec: SentRecord) {
        match self.items.back() {
            Some(&(last, _)) if last >= seq => {
                // retransmission re-entering the window out of order
                let idx = self.items.partition_point(|&(s, _)| s < seq);
                debug_assert!(self.items.get(idx).map(|&(s, _)| s) != Some(seq));
                self.items.insert(idx, (seq, rec));
            }
            _ => self.items.push_back((seq, rec)),
        }
    }

    fn remove(&mut self, seq: u64) -> Option<SentRecord> {
        match self.items.front() {
            Some(&(s, _)) if s == seq => self.items.pop_front().map(|(_, r)| r),
            _ => {
                let idx = self.items.binary_search_by_key(&seq, |&(s, _)| s).ok()?;
                self.items.remove(idx).map(|(_, r)| r)
            }
        }
    }

    /// Sequence numbers strictly below `seq`, in order.
    fn seqs_below(&self, seq: u64) -> impl Iterator<Item = u64> + '_ {
        self.items
            .iter()
            .take_while(move |&&(s, _)| s < seq)
            .map(|&(s, _)| s)
    }

    /// Mutable records with sequence strictly below `seq`, in order.
    fn iter_mut_below(&mut self, seq: u64) -> impl Iterator<Item = (u64, &mut SentRecord)> {
        self.items
            .iter_mut()
            .take_while(move |&&mut (s, _)| s < seq)
            .map(|&mut (s, ref mut r)| (s, r))
    }

    /// All in-flight sequence numbers, in order.
    fn all_seqs(&self) -> impl Iterator<Item = u64> + '_ {
        self.items.iter().map(|&(s, _)| s)
    }

    fn clear(&mut self) {
        self.items.clear();
    }
}

const TOK_RTO: u64 = 1;
const TOK_PACE: u64 = 2;
const TOK_APP: u64 = 3;

/// Duplicate-ACK threshold for loss inference (no reordering in the
/// simulator, so 3 is conservative and faithful).
const DUPACK_THRESHOLD: u32 = 3;
const MIN_RTO: SimDuration = SimDuration::from_millis(200);
const INITIAL_RTO: SimDuration = SimDuration::from_secs(1);

/// A reliable transport sender with pluggable congestion control.
pub struct Sender {
    flow: FlowId,
    cc: Box<dyn CongestionControl>,
    route: Rc<Route>,
    app: TrafficSource,
    pkt_size: u32,
    start_at: SimTime,
    stop_at: Option<SimTime>,

    next_seq: u64,
    outstanding: SentWindow,
    retx_queue: VecDeque<u64>,
    /// Loss-episode guard: losses on seqs below this were already reacted to.
    recovery_until: u64,

    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: SimDuration,
    rto: SimDuration,
    rto_backoff: u32,
    /// The single pending RTO timer, if any. Re-arming per send would churn
    /// the queue, so sends only move `rto_deadline`; a pending timer that
    /// fires before the deadline re-arms itself for the remainder, and a
    /// deadline that moves *earlier* than the pending fire time (the RTO
    /// estimate shrank) cancels and re-arms immediately. Quiescing (all
    /// data ACKed) cancels outright.
    rto_timer: Option<TimerId>,
    /// When the pending timer will fire (valid while `rto_timer` is Some).
    rto_timer_at: SimTime,
    rto_deadline: SimTime,
    /// Batched-dispatch mode ([`Node::handle_batch`]): while set,
    /// `arm_rto` only moves `rto_deadline`, and a single
    /// `sync_rto_timer` call at batch end reconciles the queue timer —
    /// N same-instant ACKs cost one timer operation instead of N.
    batch_rto_defer: bool,

    /// At most one pacing timer is outstanding; the flag (not a generation
    /// tag) guarantees it, so pace ticks never go stale.
    pace_armed: bool,
    /// A TOK_APP wakeup is pending; prevents every ACK from spawning an
    /// additional timer chain (each chain re-arms itself forever).
    app_timer_armed: bool,

    // token-bucket state for RateLimited
    app_tokens: f64,
    app_last: SimTime,
    app_bytes_offered: u64,
    /// Application model layered above `app`; when present it gates data
    /// availability instead of the [`TrafficSource`].
    driver: Option<Box<dyn AppDriver>>,

    delivered_bytes: u64,
    stats: SenderStats,
    started: bool,
    /// Reused per-ACK scratch (implicitly-covered and inferred-lost seqs).
    scratch_seqs: Vec<u64>,
}

impl Sender {
    /// A sender for `flow` running `cc`, sending along `route`, fed by
    /// the application pattern `app`.
    pub fn new(
        flow: FlowId,
        cc: Box<dyn CongestionControl>,
        route: Rc<Route>,
        app: TrafficSource,
    ) -> Self {
        Sender {
            flow,
            cc,
            route,
            app,
            pkt_size: MTU_BYTES,
            start_at: SimTime::ZERO,
            stop_at: None,
            next_seq: 0,
            outstanding: SentWindow::default(),
            retx_queue: VecDeque::new(),
            recovery_until: 0,
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: SimDuration::MAX,
            rto: INITIAL_RTO,
            rto_backoff: 0,
            rto_timer: None,
            rto_timer_at: SimTime::ZERO,
            rto_deadline: SimTime::ZERO,
            batch_rto_defer: false,
            pace_armed: false,
            app_timer_armed: false,
            app_tokens: 0.0,
            app_last: SimTime::ZERO,
            app_bytes_offered: 0,
            driver: None,
            delivered_bytes: 0,
            stats: SenderStats::default(),
            started: false,
            scratch_seqs: Vec::new(),
        }
    }

    /// Delay the flow's start (staggered-arrival experiments).
    pub fn with_start_at(mut self, t: SimTime) -> Self {
        self.start_at = t;
        self
    }

    /// Stop offering application data at `t` (staggered departures).
    pub fn with_stop_at(mut self, t: SimTime) -> Self {
        self.stop_at = Some(t);
        self
    }

    /// Use `size`-byte data packets instead of the MTU default.
    pub fn with_pkt_size(mut self, size: u32) -> Self {
        assert!(size > 0);
        self.pkt_size = size;
        self
    }

    /// Drive this sender from an [`AppDriver`] instead of the plain
    /// [`TrafficSource`] (which is then ignored).
    pub fn with_app_driver(mut self, driver: Box<dyn AppDriver>) -> Self {
        self.driver = Some(driver);
        self
    }

    /// The attached application driver, for post-run metric extraction.
    pub fn app_driver(&self) -> Option<&dyn AppDriver> {
        self.driver.as_deref()
    }

    /// Mutable driver access (end-of-run finalization hooks).
    pub fn app_driver_mut(&mut self) -> Option<&mut (dyn AppDriver + 'static)> {
        self.driver.as_deref_mut()
    }

    /// Lifetime transmission counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// The congestion controller driving this sender.
    pub fn cc(&self) -> &dyn CongestionControl {
        &*self.cc
    }

    /// Current congestion window (packets, fractional).
    pub fn cwnd_pkts(&self) -> f64 {
        self.cc.cwnd_pkts()
    }

    /// Smoothed RTT, once at least one sample exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Minimum RTT observed so far, once at least one sample exists.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        (self.min_rtt != SimDuration::MAX).then_some(self.min_rtt)
    }

    /// Packets currently in flight (sent, not yet acked or written off).
    pub fn inflight(&self) -> usize {
        self.outstanding.len()
    }

    fn app_has_data(&mut self, now: SimTime) -> bool {
        if self.stop_at.is_some_and(|t| now >= t) {
            return false;
        }
        if let Some(d) = &mut self.driver {
            return d.available_bytes(now) > self.app_bytes_offered;
        }
        match self.app {
            TrafficSource::Backlogged => true,
            TrafficSource::Finite { bytes } => self.app_bytes_offered < bytes,
            TrafficSource::RateLimited { rate, burst_bytes } => {
                let dt = now.since(self.app_last);
                self.app_last = now;
                self.app_tokens =
                    (self.app_tokens + rate.bps() / 8.0 * dt.as_secs_f64()).min(burst_bytes);
                self.app_tokens >= self.pkt_size as f64
            }
            TrafficSource::OnOff { on, off } => {
                let period = (on + off).as_nanos();
                let phase = now.since(self.start_at).as_nanos() % period;
                phase < on.as_nanos()
            }
        }
    }

    /// When will the app next have data, if it currently doesn't?
    fn app_next_ready(&mut self, now: SimTime) -> Option<SimTime> {
        if let Some(d) = &mut self.driver {
            return d.next_wakeup(now);
        }
        match self.app {
            TrafficSource::Backlogged | TrafficSource::Finite { .. } => None,
            TrafficSource::RateLimited { rate, .. } => {
                let deficit = (self.pkt_size as f64 - self.app_tokens).max(0.0);
                if rate.is_zero() {
                    return None;
                }
                let dt = SimDuration::from_secs_f64(deficit / (rate.bps() / 8.0));
                Some(now + dt.max(SimDuration::from_micros(100)))
            }
            TrafficSource::OnOff { on, off } => {
                let period = (on + off).as_nanos();
                let since = now.since(self.start_at).as_nanos();
                let phase = since % period;
                if phase < on.as_nanos() {
                    None // already on
                } else {
                    Some(self.start_at + SimDuration::from_nanos(since - phase + period))
                }
            }
        }
    }

    fn consume_app(&mut self, bytes: u32) {
        if self.driver.is_some() {
            self.app_bytes_offered += bytes as u64;
            return;
        }
        match &mut self.app {
            TrafficSource::RateLimited { .. } => self.app_tokens -= bytes as f64,
            TrafficSource::Finite { .. } => self.app_bytes_offered += bytes as u64,
            _ => {}
        }
    }

    fn window_allows(&self) -> bool {
        (self.outstanding.len() as f64) < self.cc.cwnd_pkts().floor().max(1.0)
    }

    fn send_one(&mut self, ctx: &mut Context, seq: u64, retransmit: bool) {
        let now = ctx.now();
        let pkt = Packet {
            flow: self.flow,
            seq,
            size: self.pkt_size,
            ecn: self.cc.outgoing_ecn(),
            feedback: self.cc.outgoing_feedback(now),
            abc_capable: self.cc.is_abc(),
            sent_at: now,
            retransmit,
            ack: None,
            route: self.route.clone(),
            hop: 0,
            enqueued_at: now,
        };
        self.outstanding.insert(
            seq,
            SentRecord {
                sent_at: now,
                size: self.pkt_size,
                retransmit,
                passed: 0,
                delivered_at_send: self.delivered_bytes,
            },
        );
        self.stats.sent_pkts += 1;
        self.stats.sent_bytes += self.pkt_size as u64;
        if retransmit {
            self.stats.retransmits += 1;
        }
        ctx.forward(pkt);
        self.arm_rto(ctx);
    }

    /// Transmit as much as window + application allow (ACK-clocked mode),
    /// or ensure the pacing clock is armed (paced mode).
    fn try_send(&mut self, ctx: &mut Context) {
        if ctx.now() < self.start_at {
            return;
        }
        match self.cc.pacing() {
            Pacing::AckClocked => {
                while self.window_allows() {
                    if let Some(seq) = self.retx_queue.pop_front() {
                        self.send_one(ctx, seq, true);
                        continue;
                    }
                    if self.app_has_data(ctx.now()) {
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        self.consume_app(self.pkt_size);
                        self.send_one(ctx, seq, false);
                    } else {
                        if !self.app_timer_armed {
                            if let Some(at) = self.app_next_ready(ctx.now()) {
                                ctx.set_timer_at(at, TOK_APP);
                                self.app_timer_armed = true;
                            }
                        }
                        break;
                    }
                }
            }
            Pacing::Rate(_) => self.arm_pacer(ctx),
        }
    }

    fn arm_pacer(&mut self, ctx: &mut Context) {
        if self.pace_armed {
            return;
        }
        if let Pacing::Rate(r) = self.cc.pacing() {
            let gap = r
                .tx_time(self.pkt_size)
                .max(SimDuration::from_micros(10))
                .min(SimDuration::from_secs(1));
            self.pace_armed = true;
            ctx.set_timer(gap, TOK_PACE);
        }
    }

    fn on_pace_tick(&mut self, ctx: &mut Context) {
        self.pace_armed = false;
        if ctx.now() < self.start_at {
            self.arm_pacer(ctx);
            return;
        }
        if self.window_allows() {
            if let Some(seq) = self.retx_queue.pop_front() {
                self.send_one(ctx, seq, true);
            } else if self.app_has_data(ctx.now()) {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.consume_app(self.pkt_size);
                self.send_one(ctx, seq, false);
            }
        }
        self.arm_pacer(ctx);
    }

    fn arm_rto(&mut self, ctx: &mut Context) {
        let backoff = 1u64 << self.rto_backoff.min(6);
        let timeout = self.rto * backoff;
        // Push the deadline; only arm a queue timer when none is pending.
        // The pending timer catches up via deferral when it fires early.
        self.rto_deadline = ctx.now() + timeout;
        ctx.count(Signal::RtoArm, Scope::Flow(self.flow.0), 1);
        if self.batch_rto_defer {
            return; // one sync_rto_timer call at batch end
        }
        self.sync_rto_timer(ctx);
    }

    /// Reconcile the queue timer with the current retransmission state:
    /// cancel it when nothing is outstanding, otherwise make sure a timer
    /// is pending no later than `rto_deadline` (a pending timer at or
    /// before the deadline defers itself at fire time).
    fn sync_rto_timer(&mut self, ctx: &mut Context) {
        if self.outstanding.is_empty() {
            // quiesce: unlink the RTO timer from the queue entirely
            if let Some(id) = self.rto_timer.take() {
                ctx.cancel_timer(id);
                ctx.count(Signal::RtoCancel, Scope::Flow(self.flow.0), 1);
            }
            return;
        }
        match self.rto_timer {
            None => {
                self.rto_timer = Some(ctx.set_timer_at(self.rto_deadline, TOK_RTO));
                self.rto_timer_at = self.rto_deadline;
            }
            // Deadline moved earlier than the pending fire time (the RTO
            // estimate shrank, e.g. after the first RTT sample replaces
            // INITIAL_RTO): deferral can only wait, so cancel and re-arm.
            Some(id) if self.rto_deadline < self.rto_timer_at => {
                ctx.cancel_timer(id);
                ctx.count(Signal::RtoCancel, Scope::Flow(self.flow.0), 1);
                self.rto_timer = Some(ctx.set_timer_at(self.rto_deadline, TOK_RTO));
                self.rto_timer_at = self.rto_deadline;
            }
            // Deadline at/after the pending fire time: the fired timer
            // defers itself to the stored deadline.
            Some(_) => {}
        }
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        self.min_rtt = self.min_rtt.min(sample);
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                // RFC 6298 with α=1/8, β=1/4
                let diff = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                self.rttvar = self.rttvar.mul_f64(0.75) + diff.mul_f64(0.25);
                self.srtt = Some(srtt.mul_f64(0.875) + sample.mul_f64(0.125));
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + self.rttvar * 4).max(MIN_RTO);
    }

    fn on_ack(&mut self, ctx: &mut Context, ack: AckData) {
        let now = ctx.now();
        // Cumulative credit first: packets below the receiver's cumulative
        // point were delivered even if their individual ACKs were lost.
        // They are removed silently — no loss inference, no retransmission
        // — and their bytes are credited to this ACK (§3.1.1's byte
        // counting, which makes window updates robust to lost ACKs).
        let mut implicit_bytes: u32 = 0;
        let mut covered = std::mem::take(&mut self.scratch_seqs);
        covered.clear();
        covered.extend(self.outstanding.seqs_below(ack.cumulative_before));
        for &s in &covered {
            if s == ack.seq {
                continue; // handled explicitly below
            }
            if let Some(r) = self.outstanding.remove(s) {
                implicit_bytes += r.size;
                self.delivered_bytes += r.size as u64;
                self.stats.acked_pkts += 1;
                self.stats.acked_bytes += r.size as u64;
            }
        }
        self.scratch_seqs = covered;
        if !self.retx_queue.is_empty() {
            self.retx_queue.retain(|&s| s >= ack.cumulative_before);
        }

        let Some(rec) = self.outstanding.remove(ack.seq) else {
            // duplicate / already-retransmitted ACK; the cumulative credit
            // above still applied. Resume sending if window opened.
            if implicit_bytes > 0 {
                if let Some(d) = &mut self.driver {
                    d.on_progress(now, self.delivered_bytes);
                }
                self.try_send(ctx);
            }
            return;
        };
        self.rto_backoff = 0;
        self.delivered_bytes += rec.size as u64;
        self.stats.acked_pkts += 1;
        self.stats.acked_bytes += rec.size as u64;
        match ack.ecn_echo {
            Ecn::Accelerate => self.stats.accel_acks += 1,
            Ecn::Brake => self.stats.brake_acks += 1,
            _ => {}
        }

        let rtt_sample = (!rec.retransmit).then(|| now.since(rec.sent_at));
        if let Some(s) = rtt_sample {
            self.update_rtt(s);
        }

        // delivery-rate sample over the acked packet's flight
        let interval = now.since(rec.sent_at);
        let delivery_rate = if interval.is_zero() {
            Rate::ZERO
        } else {
            Rate::from_bytes_per(self.delivered_bytes - rec.delivered_at_send, interval)
        };

        // Dupack-equivalent loss inference. The path is FIFO, so if the
        // acked packet arrived, every packet *transmitted before it* that
        // is still outstanding was passed. The transmission-time check
        // matters for retransmissions: a fresh retransmit sits behind a
        // full queue, and ACKs of packets sent before it must not count
        // against it (else it is spuriously retransmitted every 3 ACKs).
        let acked_tx_time = rec.sent_at;
        let mut lost = std::mem::take(&mut self.scratch_seqs);
        lost.clear();
        for (seq, r) in self.outstanding.iter_mut_below(ack.seq) {
            if r.sent_at < acked_tx_time {
                r.passed += 1;
                if r.passed >= DUPACK_THRESHOLD {
                    lost.push(seq);
                }
            }
        }
        let mut new_episode = false;
        for &seq in &lost {
            self.outstanding.remove(seq);
            if !self.retx_queue.contains(&seq) {
                self.retx_queue.push_back(seq);
            }
            self.stats.losses_detected += 1;
            if seq >= self.recovery_until {
                new_episode = true;
            }
        }
        self.scratch_seqs = lost;
        if new_episode {
            self.recovery_until = self.next_seq;
            self.cc.on_loss(now);
        }

        let ev = AckEvent {
            now,
            rtt: rtt_sample,
            min_rtt: if self.min_rtt == SimDuration::MAX {
                SimDuration::ZERO
            } else {
                self.min_rtt
            },
            srtt: self.srtt.unwrap_or(SimDuration::ZERO),
            acked_bytes: rec.size + implicit_bytes,
            ecn_echo: ack.ecn_echo,
            feedback: ack.feedback,
            inflight_pkts: self.outstanding.len(),
            delivery_rate,
            one_way_delay: ack.one_way_delay,
        };
        self.cc.on_ack(&ev);
        if ctx.telemetry_on() {
            let scope = Scope::Flow(self.flow.0);
            ctx.sample(Signal::Cwnd, scope, self.cc.cwnd_pkts());
            ctx.sample(Signal::Inflight, scope, self.outstanding.len() as f64);
            ctx.sample(
                Signal::SrttMs,
                scope,
                self.srtt.unwrap_or(SimDuration::ZERO).as_millis_f64(),
            );
            if let Pacing::Rate(r) = self.cc.pacing() {
                ctx.sample(Signal::PacingRateMbps, scope, r.mbps());
            }
        }
        if let Some(d) = &mut self.driver {
            d.on_progress(now, self.delivered_bytes);
        }
        if self.outstanding.is_empty() {
            // quiesce: unlink the RTO timer from the queue entirely (in
            // batched dispatch, the end-of-batch sync does it once)
            if !self.batch_rto_defer {
                self.sync_rto_timer(ctx);
            }
        } else {
            self.arm_rto(ctx);
        }
        self.try_send(ctx);
    }

    fn on_rto_fire(&mut self, ctx: &mut Context) {
        if self.outstanding.is_empty() {
            return;
        }
        let now = ctx.now();
        self.stats.rtos += 1;
        self.rto_backoff += 1;
        ctx.count(Signal::RtoFire, Scope::Flow(self.flow.0), 1);
        self.cc.on_rto(now);
        // conservative go-back-N: everything outstanding is presumed lost
        let seqs: Vec<u64> = self.outstanding.all_seqs().collect();
        self.outstanding.clear();
        for s in seqs {
            if !self.retx_queue.contains(&s) {
                self.retx_queue.push_back(s);
            }
        }
        self.recovery_until = self.next_seq;
        self.try_send(ctx);
    }
}

impl Node for Sender {
    crate::impl_node_downcast!();

    fn start(&mut self, ctx: &mut Context) {
        self.started = true;
        self.app_last = ctx.now();
        if self.start_at > ctx.now() {
            ctx.set_timer_at(self.start_at, TOK_APP);
        } else {
            self.try_send(ctx);
        }
    }

    fn handle(&mut self, ctx: &mut Context, event: EventKind) {
        match event {
            EventKind::Deliver(pkt) => {
                if let Some(ack) = pkt.ack {
                    debug_assert_eq!(pkt.flow, self.flow, "ACK routed to wrong sender");
                    ctx.recycle(pkt);
                    self.on_ack(ctx, ack);
                } else {
                    ctx.recycle(pkt);
                }
            }
            EventKind::Timer(tok) => match tok {
                TOK_RTO => {
                    self.rto_timer = None;
                    if self.outstanding.is_empty() {
                        // already quiesced between arm and fire
                    } else if ctx.now() < self.rto_deadline {
                        // sends pushed the deadline since this was armed:
                        // defer instead of firing
                        let remaining = self.rto_deadline.since(ctx.now());
                        self.rto_timer = Some(ctx.set_timer(remaining, TOK_RTO));
                        self.rto_timer_at = self.rto_deadline;
                    } else {
                        self.on_rto_fire(ctx);
                    }
                }
                TOK_PACE => self.on_pace_tick(ctx),
                TOK_APP => {
                    self.app_timer_armed = false;
                    self.try_send(ctx);
                }
                _ => {}
            },
        }
    }

    /// Coalesce a same-instant ACK burst (e.g. from a batching
    /// [`Sink`]) into one RTO-timer reconciliation. Every per-ACK
    /// semantic — congestion-control updates with the per-ACK inflight
    /// count, loss inference, app progress, window-driven sends — runs
    /// per event exactly as in single dispatch; only the RTO timer's
    /// queue churn is deferred: `arm_rto` moves the deadline per event
    /// and a single `sync_rto_timer` call reconciles the queue at batch
    /// end, the same catch-up the `TOK_RTO` handler performs when a
    /// deferred timer fires early.
    fn handle_batch(&mut self, ctx: &mut Context, batch: &mut Vec<EventKind>) {
        self.batch_rto_defer = true;
        for event in batch.drain(..) {
            self.handle(ctx, event);
        }
        self.batch_rto_defer = false;
        self.sync_rto_timer(ctx);
    }
}

/// Per-flow receiver: records deliveries, echoes feedback in an ACK sent
/// along `ack_route`.
///
/// By default every data packet is acknowledged immediately. With
/// [`Sink::with_ack_batching`], ACKs are held until `batch` have
/// accumulated or `max_delay` passes, then released together — modeling
/// delayed/compressed ACKs. Each released ACK still covers exactly one
/// data packet (the feedback echo is per-packet), so batching stresses
/// senders with bursty ACK arrival without changing reliability semantics.
pub struct Sink {
    flow: FlowId,
    ack_route: Rc<Route>,
    metrics: Option<Metrics>,
    /// Data packets received (duplicates included).
    pub received_pkts: u64,
    /// Wire bytes received (duplicates included).
    pub received_bytes: u64,
    batch: usize,
    max_delay: SimDuration,
    // Held ACKs keep their pooled boxes so a flush forwards them as-is.
    #[allow(clippy::vec_box)]
    pending: Vec<Box<Packet>>,
    /// Pending partial-batch flush timer; cancelled when a full batch
    /// flushes first.
    flush_timer: Option<TimerId>,
    /// Lowest data sequence not yet received (cumulative-ACK point).
    next_expected: u64,
    /// Received sequences at/above `next_expected` (out-of-order set).
    ooo: std::collections::BTreeSet<u64>,
}

const TOK_FLUSH: u64 = 7;

impl Sink {
    /// A receiver for `flow` returning ACKs along `ack_route`,
    /// acknowledging every packet immediately.
    pub fn new(flow: FlowId, ack_route: Rc<Route>) -> Self {
        Sink {
            flow,
            ack_route,
            metrics: None,
            received_pkts: 0,
            received_bytes: 0,
            batch: 1,
            max_delay: SimDuration::ZERO,
            pending: Vec::new(),
            flush_timer: None,
            next_expected: 0,
            ooo: std::collections::BTreeSet::new(),
        }
    }

    /// Report per-delivery metrics to `metrics`.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Hold ACKs until `batch` accumulate or `max_delay` passes.
    pub fn with_ack_batching(mut self, batch: usize, max_delay: SimDuration) -> Self {
        assert!(batch >= 1);
        self.batch = batch;
        self.max_delay = max_delay;
        self
    }

    fn flush(&mut self, ctx: &mut Context) {
        if let Some(id) = self.flush_timer.take() {
            ctx.cancel_timer(id);
        }
        for ack in self.pending.drain(..) {
            ctx.forward_boxed(ack);
        }
    }
}

impl Node for Sink {
    crate::impl_node_downcast!();

    fn handle(&mut self, ctx: &mut Context, event: EventKind) {
        let mut pkt = match event {
            EventKind::Deliver(p) => p,
            EventKind::Timer(tok) => {
                if tok == TOK_FLUSH {
                    self.flush_timer = None;
                    self.flush(ctx);
                }
                return;
            }
        };
        if pkt.is_ack() {
            ctx.recycle(pkt);
            return; // not expected at a sink
        }
        debug_assert_eq!(pkt.flow, self.flow, "data packet routed to wrong sink");
        let now = ctx.now();
        let delay = now.since(pkt.sent_at);
        self.received_pkts += 1;
        self.received_bytes += pkt.size as u64;
        // Advance the cumulative point (fast path: in-order arrival).
        // `unique` is true on the first delivery of a sequence only —
        // duplicates (spurious retransmissions) are below the cumulative
        // point or already in the out-of-order set.
        let unique = if pkt.seq == self.next_expected && self.ooo.is_empty() {
            self.next_expected += 1;
            true
        } else if pkt.seq >= self.next_expected {
            let fresh = self.ooo.insert(pkt.seq);
            while self.ooo.remove(&self.next_expected) {
                self.next_expected += 1;
            }
            fresh
        } else {
            false
        };
        if let Some(m) = &self.metrics {
            m.borrow_mut()
                .on_delivery(pkt.flow, now, delay, pkt.size, unique, pkt.retransmit);
        }
        // Reuse the data packet's box for the ACK: the sink is where data
        // allocations die and ACK allocations are born.
        *pkt = Packet {
            flow: pkt.flow,
            seq: pkt.seq,
            size: crate::packet::ACK_BYTES,
            ecn: Ecn::NotEct,
            feedback: Feedback::None,
            abc_capable: pkt.abc_capable,
            sent_at: now,
            retransmit: false,
            ack: Some(AckData {
                seq: pkt.seq,
                cumulative_before: self.next_expected,
                data_sent_at: pkt.sent_at,
                data_size: pkt.size,
                ecn_echo: pkt.ecn,
                feedback: pkt.feedback,
                one_way_delay: delay,
                retransmit: pkt.retransmit,
            }),
            route: self.ack_route.clone(),
            hop: 0,
            enqueued_at: now,
        };
        let ack = pkt;
        if self.batch <= 1 {
            ctx.forward_boxed(ack);
            return;
        }
        self.pending.push(ack);
        if self.pending.len() >= self.batch {
            self.flush(ctx);
        } else if self.pending.len() == 1 && !self.max_delay.is_zero() {
            self.flush_timer = Some(ctx.set_timer(self.max_delay, TOK_FLUSH));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{ConstantRate, SerialLink};
    use crate::linkqueue::LinkQueue;
    use crate::metrics::new_hub;
    use crate::packet::NodeId;
    use crate::queue::DropTail;
    use crate::sim::Simulator;

    /// Fixed-window controller for substrate tests.
    struct FixedWindow {
        w: f64,
        acks: u64,
        losses: u64,
        rtos: u64,
    }

    impl CongestionControl for FixedWindow {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn on_ack(&mut self, _ev: &AckEvent) {
            self.acks += 1;
        }
        fn on_loss(&mut self, _now: SimTime) {
            self.losses += 1;
        }
        fn on_rto(&mut self, _now: SimTime) {
            self.rtos += 1;
        }
        fn cwnd_pkts(&self) -> f64 {
            self.w
        }
    }

    /// Build sender → link → sink → sender over a `rate` link with
    /// `one_way` propagation each direction; returns (sim, sender_id, hub).
    fn loop_topology(
        rate_mbps: f64,
        buf: usize,
        w: f64,
        app: TrafficSource,
    ) -> (Simulator, NodeId, Metrics) {
        let mut sim = Simulator::new();
        let hub = new_hub();
        let sender_id = sim.reserve_node();
        let link_id = sim.reserve_node();
        let sink_id = sim.reserve_node();

        let fwd = Route::new(vec![
            (link_id, SimDuration::from_millis(10)),
            (sink_id, SimDuration::from_millis(40)),
        ]);
        let back = Route::new(vec![(sender_id, SimDuration::from_millis(50))]);

        sim.install_node(
            link_id,
            Box::new(
                LinkQueue::new(
                    Box::new(DropTail::new(buf)),
                    Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(rate_mbps)))),
                )
                .with_metrics("bottleneck", hub.clone()),
            ),
        );
        sim.install_node(
            sink_id,
            Box::new(Sink::new(FlowId(1), back).with_metrics(hub.clone())),
        );
        sim.install_node(
            sender_id,
            Box::new(Sender::new(
                FlowId(1),
                Box::new(FixedWindow {
                    w,
                    acks: 0,
                    losses: 0,
                    rtos: 0,
                }),
                fwd,
                app,
            )),
        );
        (sim, sender_id, hub)
    }

    fn sender_of(sim: &Simulator, id: NodeId) -> &Sender {
        sim.node(id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap()
    }

    #[test]
    fn window_limits_inflight_and_acks_clock_sends() {
        // 12 Mbit/s, RTT 100ms → BDP = 100 pkts; window of 10 → ~10% util
        let (mut sim, sender_id, hub) = loop_topology(12.0, 250, 10.0, TrafficSource::Backlogged);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let s = sender_of(&sim, sender_id);
        assert!(s.inflight() <= 10);
        assert_eq!(s.stats().losses_detected, 0);
        // expected throughput ≈ 10 pkt / 100ms ≈ 1.2 Mbit/s
        let tput = hub.borrow().flows[&FlowId(1)].throughput_over(SimDuration::from_secs(10));
        assert!(
            (tput / 1e6 - 1.2).abs() < 0.15,
            "throughput {} Mbit/s",
            tput / 1e6
        );
    }

    #[test]
    fn rtt_estimator_converges_to_path_rtt() {
        let (mut sim, sender_id, _) = loop_topology(12.0, 250, 4.0, TrafficSource::Backlogged);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        let s = sender_of(&sim, sender_id);
        // path RTT = 100ms prop + 1ms serialization
        let srtt = s.srtt().unwrap().as_millis_f64();
        assert!((srtt - 101.0).abs() < 2.0, "srtt={srtt}ms");
        let min = s.min_rtt().unwrap().as_millis_f64();
        assert!((min - 101.0).abs() < 1.5, "min_rtt={min}ms");
    }

    #[test]
    fn overload_fills_buffer_and_detects_loss() {
        // window 400 over a 100-pkt BDP w/ 50-pkt buffer → sustained loss
        let (mut sim, sender_id, hub) = loop_topology(12.0, 50, 400.0, TrafficSource::Backlogged);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let s = sender_of(&sim, sender_id);
        assert!(s.stats().losses_detected > 0, "no losses detected");
        assert!(s.stats().retransmits > 0, "no retransmissions");
        assert!(hub.borrow().links["bottleneck"].dropped_pkts > 0);
        // the link itself should be saturated
        let q = hub.borrow().links["bottleneck"].delivered_pkts;
        assert!(q > 9000, "link under-driven: {q} pkts");
    }

    #[test]
    fn finite_flow_stops() {
        let (mut sim, sender_id, _) =
            loop_topology(12.0, 250, 10.0, TrafficSource::Finite { bytes: 15_000 });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        let s = sender_of(&sim, sender_id);
        assert_eq!(s.stats().sent_pkts, 10); // 15000/1500
        assert_eq!(s.stats().acked_pkts, 10);
        assert_eq!(s.inflight(), 0);
    }

    #[test]
    fn rate_limited_app_paces_itself() {
        let (mut sim, sender_id, hub) = loop_topology(
            12.0,
            250,
            100.0,
            TrafficSource::RateLimited {
                rate: Rate::from_mbps(1.2),
                burst_bytes: 3000.0,
            },
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let s = sender_of(&sim, sender_id);
        // ~1.2 Mbit/s = 100 pkt/s for 10s ≈ 1000 pkts (±5%)
        assert!(
            (s.stats().sent_pkts as i64 - 1000).unsigned_abs() < 50,
            "sent {}",
            s.stats().sent_pkts
        );
        let tput = hub.borrow().flows[&FlowId(1)].throughput_over(SimDuration::from_secs(10));
        assert!((tput / 1e6 - 1.2).abs() < 0.1, "tput {tput}");
    }

    #[test]
    fn onoff_source_gates_sending() {
        let (mut sim, sender_id, hub) = loop_topology(
            12.0,
            250,
            10.0,
            TrafficSource::OnOff {
                on: SimDuration::from_secs(1),
                off: SimDuration::from_secs(1),
            },
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let s = sender_of(&sim, sender_id);
        assert!(s.stats().sent_pkts > 0);
        // roughly half the packets of an always-on flow (which would be
        // ~100 pkt/s · 10 s = 1000 at this window)
        assert!(
            s.stats().sent_pkts < 700,
            "on/off sent too much: {}",
            s.stats().sent_pkts
        );
        assert!(hub.borrow().flows[&FlowId(1)].delivered_pkts > 300);
    }
}

#[cfg(test)]
mod sink_batching_tests {
    use super::*;
    use crate::event::EventKind;
    use crate::node::Node;
    use crate::packet::NodeId;
    use crate::sim::Simulator;

    struct AckCounter {
        arrivals: Vec<SimTime>,
    }

    impl Node for AckCounter {
        crate::impl_node_downcast!();
        fn handle(&mut self, ctx: &mut Context, ev: EventKind) {
            if let EventKind::Deliver(p) = ev {
                assert!(p.is_ack());
                self.arrivals.push(ctx.now());
            }
        }
    }

    /// Emits `n` data packets to the sink, one per ms.
    struct DataSource {
        n: u64,
        sink: NodeId,
        sent: u64,
    }

    impl Node for DataSource {
        crate::impl_node_downcast!();
        fn start(&mut self, ctx: &mut Context) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn handle(&mut self, ctx: &mut Context, _ev: EventKind) {
            if self.sent >= self.n {
                return;
            }
            let route = Route::new(vec![(self.sink, SimDuration::ZERO)]);
            ctx.forward(Packet {
                flow: FlowId(1),
                seq: self.sent,
                size: 1500,
                ecn: Ecn::Accelerate,
                feedback: Feedback::None,
                abc_capable: true,
                sent_at: ctx.now(),
                retransmit: false,
                ack: None,
                route,
                hop: 0,
                enqueued_at: ctx.now(),
            });
            self.sent += 1;
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
    }

    fn run_batched(n: u64, batch: usize, max_delay_ms: u64) -> Vec<SimTime> {
        let mut sim = Simulator::new();
        let sink_id = sim.reserve_node();
        let counter_id = sim.reserve_node();
        let back = Route::new(vec![(counter_id, SimDuration::ZERO)]);
        sim.install_node(
            sink_id,
            Box::new(
                Sink::new(FlowId(1), back)
                    .with_ack_batching(batch, SimDuration::from_millis(max_delay_ms)),
            ),
        );
        sim.install_node(counter_id, Box::new(AckCounter { arrivals: vec![] }));
        sim.add_node(Box::new(DataSource {
            n,
            sink: sink_id,
            sent: 0,
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let c: &AckCounter = sim
            .node(counter_id)
            .and_then(|nd| nd.as_any().downcast_ref())
            .unwrap();
        c.arrivals.clone()
    }

    #[test]
    fn batch_of_one_acks_immediately() {
        let arrivals = run_batched(10, 1, 0);
        assert_eq!(arrivals.len(), 10);
        // one per ms, no bunching
        assert!(arrivals.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn batches_release_together() {
        let arrivals = run_batched(12, 4, 100);
        assert_eq!(arrivals.len(), 12);
        // groups of 4 share a timestamp
        for chunk in arrivals.chunks(4) {
            assert!(chunk.iter().all(|&t| t == chunk[0]), "unbatched: {chunk:?}");
        }
    }

    #[test]
    fn partial_batch_flushes_on_timeout() {
        // 2 packets with batch=4: the 10 ms timer must flush them
        let arrivals = run_batched(2, 4, 10);
        assert_eq!(arrivals.len(), 2);
        // data at 1,2 ms; flush timer armed at first pending ack → ~11 ms
        let last = arrivals[1].as_millis_f64();
        assert!((10.0..13.0).contains(&last), "flush at {last} ms");
    }
}
