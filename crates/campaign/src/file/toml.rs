//! A zero-dependency parser for the TOML subset campaign files use.
//!
//! The workspace builds offline with no external crates, so campaign
//! files are parsed by this module instead of the `toml` crate. The
//! supported subset is what [`super::schema`] needs — and nothing more:
//!
//! * `[table]` headers and `[[array-of-tables]]` headers, with dotted
//!   paths (`[scale.tiny]`, `[[axis.values]]`);
//! * `key = value` pairs with bare (`a-z A-Z 0-9 _ -`) or quoted keys;
//! * basic `"…"` strings (with `\" \\ \n \t \r \u{…}`-style escapes) and
//!   literal `'…'` strings;
//! * integers (with `_` separators), floats, booleans;
//! * arrays, which may span lines, with optional trailing commas;
//! * single-line inline tables `{ k = v, … }`;
//! * `#` comments.
//!
//! Unsupported TOML (dates, multi-line strings, `+inf`/`nan`) is
//! rejected with an error, never silently misread. Every parsed value
//! carries its source [`Pos`], and every error message names a line and
//! column — the schema layer reuses those positions, so a typo deep in a
//! campaign file points at the offending character, not at "the file".
//!
//! ```
//! use campaign::file::toml;
//! let doc = toml::parse("a = 1\n[t]\nb = \"x\"\n").unwrap();
//! assert_eq!(doc.get("a").unwrap().value.as_int(), Some(1));
//! let err = toml::parse("a = @").unwrap_err();
//! assert_eq!((err.pos.line, err.pos.col), (1, 5));
//! ```

use std::fmt;

/// A 1-based source position: the line and column an item starts at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in characters, not bytes).
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// A parse (or schema) error anchored to a source position.
#[derive(Debug, Clone)]
pub struct TomlError {
    /// Where the problem is.
    pub pos: Pos,
    /// What the problem is.
    pub message: String,
}

impl TomlError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> TomlError {
        TomlError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for TomlError {}

/// A value plus the position it was written at.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// Where the value starts in the source.
    pub pos: Pos,
    /// The value itself.
    pub value: Value,
}

/// A TOML value. Tables keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic or literal string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array (including an array of tables).
    Array(Vec<Spanned>),
    /// A table (standard, dotted, or inline).
    Table(Table),
}

impl Value {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A numeric reading: integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Spanned]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The table, if this is a table.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// A short name for error messages ("string", "integer", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// An ordered table: `(key, value)` pairs in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Where the table was opened (its header, first key, or `{`).
    pub pos: Pos,
    /// Entries in insertion order.
    pub entries: Vec<(String, Spanned)>,
}

impl Table {
    fn new(pos: Pos) -> Table {
        Table {
            pos,
            entries: Vec::new(),
        }
    }

    /// Look a key up.
    pub fn get(&self, key: &str) -> Option<&Spanned> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_mut(&mut self, key: &str) -> Option<&mut Spanned> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parse a TOML document into its root [`Table`].
pub fn parse(text: &str) -> Result<Table, TomlError> {
    Parser::new(text).document()
}

/// What a `[header]` path segment resolves to while navigating.
enum Walk {
    Table,
    ArrayOfTables,
}

struct Parser {
    chars: Vec<char>,
    idx: usize,
    line: usize,
    col: usize,
    /// Paths already opened by an explicit `[header]` — reopening one is
    /// an error (TOML's duplicate-table rule).
    defined_tables: Vec<Vec<String>>,
}

impl Parser {
    fn new(text: &str) -> Parser {
        Parser {
            chars: text.chars().collect(),
            idx: 0,
            line: 1,
            col: 1,
            defined_tables: Vec::new(),
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn err(&self, pos: Pos, message: impl Into<String>) -> TomlError {
        TomlError::new(pos, message)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.idx).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.idx += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Skip spaces and tabs (not newlines) and a trailing `#` comment.
    fn skip_inline_ws(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip whitespace, comments, and newlines.
    fn skip_ws(&mut self) {
        loop {
            self.skip_inline_ws();
            if self.peek() == Some('\n') {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// After a header or key-value pair: only a comment may follow on the
    /// line.
    fn expect_line_end(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        match self.peek() {
            None | Some('\n') => Ok(()),
            Some(c) => Err(self.err(
                self.pos(),
                format!("unexpected {c:?} (expected end of line)"),
            )),
        }
    }

    fn document(mut self) -> Result<Table, TomlError> {
        let mut root = Table::new(Pos { line: 1, col: 1 });
        // Path of the table new key-value pairs land in.
        let mut current: Vec<String> = Vec::new();
        loop {
            self.skip_ws();
            let Some(c) = self.peek() else { break };
            if c == '[' {
                let pos = self.pos();
                self.bump();
                let array = self.peek() == Some('[');
                if array {
                    self.bump();
                }
                self.skip_inline_ws();
                let path = self.key_path()?;
                self.skip_inline_ws();
                for _ in 0..(if array { 2 } else { 1 }) {
                    if self.peek() != Some(']') {
                        return Err(self.err(
                            self.pos(),
                            format!("unclosed {} header", if array { "[[…]]" } else { "[…]" }),
                        ));
                    }
                    self.bump();
                }
                self.expect_line_end()?;
                if array {
                    self.open_array_of_tables(&mut root, &path, pos)?;
                } else {
                    self.open_table(&mut root, &path, pos)?;
                }
                current = path;
            } else {
                let pos = self.pos();
                let path = self.key_path()?;
                self.skip_inline_ws();
                if self.peek() != Some('=') {
                    return Err(self.err(self.pos(), "expected `=` after key"));
                }
                self.bump();
                self.skip_inline_ws();
                let value = self.value()?;
                self.expect_line_end()?;
                let table = Self::navigate(&mut root, &current)
                    .ok_or_else(|| self.err(pos, "internal: current table vanished"))?;
                Self::insert(table, &path, value, pos)?;
            }
        }
        Ok(root)
    }

    /// Walk `root` to the table at `path`, entering the last element of
    /// any array-of-tables on the way. The path was validated when the
    /// header opened it, so this cannot fail in practice.
    fn navigate<'t>(root: &'t mut Table, path: &[String]) -> Option<&'t mut Table> {
        let mut t = root;
        for seg in path {
            let next = t.get_mut(seg)?;
            t = match &mut next.value {
                Value::Table(t) => t,
                Value::Array(items) => match &mut items.last_mut()?.value {
                    Value::Table(t) => t,
                    _ => return None,
                },
                _ => return None,
            };
        }
        Some(t)
    }

    /// `[a.b.c]`: create intermediate tables as needed; reject a reopened
    /// or value-shadowing path.
    fn open_table(&mut self, root: &mut Table, path: &[String], pos: Pos) -> Result<(), TomlError> {
        if self.defined_tables.iter().any(|p| p == path) {
            return Err(self.err(pos, format!("table `{}` defined twice", path.join("."))));
        }
        self.walk_create(root, path, pos, Walk::Table)?;
        self.defined_tables.push(path.to_vec());
        Ok(())
    }

    /// `[[a.b]]`: append a fresh table to the array at `path`.
    fn open_array_of_tables(
        &mut self,
        root: &mut Table,
        path: &[String],
        pos: Pos,
    ) -> Result<(), TomlError> {
        self.walk_create(root, path, pos, Walk::ArrayOfTables)
    }

    fn walk_create(
        &mut self,
        root: &mut Table,
        path: &[String],
        pos: Pos,
        leaf: Walk,
    ) -> Result<(), TomlError> {
        let mut t = root;
        for (i, seg) in path.iter().enumerate() {
            let last = i + 1 == path.len();
            let joined = || path[..=i].join(".");
            if t.get(seg).is_none() {
                let fresh = match (last, &leaf) {
                    (true, Walk::ArrayOfTables) => Value::Array(vec![Spanned {
                        pos,
                        value: Value::Table(Table::new(pos)),
                    }]),
                    _ => Value::Table(Table::new(pos)),
                };
                t.entries.push((seg.clone(), Spanned { pos, value: fresh }));
                let next = t.get_mut(seg).expect("just inserted");
                t = match &mut next.value {
                    Value::Table(t) => t,
                    Value::Array(items) => match &mut items.last_mut().expect("one elem").value {
                        Value::Table(t) => t,
                        _ => unreachable!("fresh array-of-tables holds a table"),
                    },
                    _ => unreachable!("fresh entry is a table or array"),
                };
                continue;
            }
            let next = t.get_mut(seg).expect("checked above");
            match (&mut next.value, last, &leaf) {
                (Value::Table(sub), false, _) | (Value::Table(sub), true, Walk::Table) => t = sub,
                (Value::Table(_), true, Walk::ArrayOfTables) => {
                    return Err(self.err(
                        pos,
                        format!("`{}` is a table, not an array of tables", joined()),
                    ));
                }
                (Value::Array(items), true, Walk::ArrayOfTables) => {
                    items.push(Spanned {
                        pos,
                        value: Value::Table(Table::new(pos)),
                    });
                    t = match &mut items.last_mut().expect("just pushed").value {
                        Value::Table(t) => t,
                        _ => unreachable!("just pushed a table"),
                    };
                }
                (Value::Array(items), _, _) => {
                    // Entering an existing array-of-tables mid-path, or
                    // `[a]` over an array: only the former is legal.
                    if last {
                        return Err(self.err(
                            pos,
                            format!("`{}` is an array of tables, not a table", joined()),
                        ));
                    }
                    t = match items.last_mut().map(|s| &mut s.value) {
                        Some(Value::Table(t)) => t,
                        _ => {
                            return Err(
                                self.err(pos, format!("`{}` is not a table array", joined()))
                            )
                        }
                    };
                }
                _ => {
                    return Err(self.err(pos, format!("`{}` is a value, not a table", joined())));
                }
            }
        }
        Ok(())
    }

    /// Insert `key = value` (with a possibly dotted key) into `table`.
    fn insert(
        table: &mut Table,
        path: &[String],
        value: Spanned,
        pos: Pos,
    ) -> Result<(), TomlError> {
        let mut t = table;
        for seg in &path[..path.len() - 1] {
            if t.get(seg).is_none() {
                t.entries.push((
                    seg.clone(),
                    Spanned {
                        pos,
                        value: Value::Table(Table::new(pos)),
                    },
                ));
            }
            let next = t.get_mut(seg).expect("just ensured");
            t = match &mut next.value {
                Value::Table(t) => t,
                _ => {
                    return Err(TomlError::new(
                        pos,
                        format!("key `{seg}` already holds a value, not a table"),
                    ))
                }
            };
        }
        let leaf = path.last().expect("non-empty key path");
        if t.get(leaf).is_some() {
            return Err(TomlError::new(pos, format!("duplicate key `{leaf}`")));
        }
        t.entries.push((leaf.clone(), value));
        Ok(())
    }

    /// A dotted key path: `a`, `a.b`, `"quoted".c`.
    fn key_path(&mut self) -> Result<Vec<String>, TomlError> {
        let mut path = vec![self.key()?];
        loop {
            self.skip_inline_ws();
            if self.peek() == Some('.') {
                self.bump();
                self.skip_inline_ws();
                path.push(self.key()?);
            } else {
                break;
            }
        }
        Ok(path)
    }

    fn key(&mut self) -> Result<String, TomlError> {
        match self.peek() {
            Some('"') => self.basic_string(),
            Some('\'') => self.literal_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(s)
            }
            _ => Err(self.err(self.pos(), "expected a key")),
        }
    }

    fn value(&mut self) -> Result<Spanned, TomlError> {
        let pos = self.pos();
        let value = match self.peek() {
            None => return Err(self.err(pos, "expected a value, found end of file")),
            Some('"') => Value::Str(self.basic_string()?),
            Some('\'') => Value::Str(self.literal_string()?),
            Some('[') => self.array()?,
            Some('{') => self.inline_table()?,
            Some('t') | Some('f') => self.boolean()?,
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' || c == '.' => self.number()?,
            Some(c) => return Err(self.err(pos, format!("unexpected {c:?} (expected a value)"))),
        };
        Ok(Spanned { pos, value })
    }

    fn basic_string(&mut self) -> Result<String, TomlError> {
        let open = self.pos();
        self.bump(); // consume `"`
        if self.peek() == Some('"') {
            // Either the empty string or an (unsupported) `"""` string.
            self.bump();
            if self.peek() == Some('"') {
                return Err(self.err(open, "multi-line strings are not supported"));
            }
            return Ok(String::new());
        }
        let mut s = String::new();
        loop {
            let at = self.pos();
            match self.bump() {
                None => return Err(self.err(open, "unterminated string")),
                Some('\n') => return Err(self.err(open, "unterminated string")),
                Some('"') => break,
                Some('\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.err(open, "unterminated string"))?;
                    s.push(match esc {
                        '"' => '"',
                        '\\' => '\\',
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        'u' | 'U' => {
                            let len = if esc == 'u' { 4 } else { 8 };
                            let mut code = 0u32;
                            for _ in 0..len {
                                let h = self
                                    .bump()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or_else(|| self.err(at, "bad \\u escape"))?;
                                code = code * 16 + h;
                            }
                            char::from_u32(code)
                                .ok_or_else(|| self.err(at, "bad \\u escape (not a scalar)"))?
                        }
                        other => {
                            return Err(self.err(at, format!("unknown escape \\{other}")));
                        }
                    });
                }
                Some(c) => s.push(c),
            }
        }
        Ok(s)
    }

    fn literal_string(&mut self) -> Result<String, TomlError> {
        let open = self.pos();
        self.bump(); // consume `'`
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => return Err(self.err(open, "unterminated string")),
                Some('\'') => break,
                Some(c) => s.push(c),
            }
        }
        Ok(s)
    }

    fn boolean(&mut self) -> Result<Value, TomlError> {
        let pos = self.pos();
        let word = self.bare_word();
        match word.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(self.err(pos, format!("expected a value, found `{word}`"))),
        }
    }

    fn bare_word(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '+' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn number(&mut self) -> Result<Value, TomlError> {
        let pos = self.pos();
        let raw = self.bare_word();
        let clean: String = raw.chars().filter(|&c| c != '_').collect();
        let is_float = clean.contains('.')
            || ((clean.contains('e') || clean.contains('E'))
                && !clean.starts_with("0x")
                && !clean.starts_with("0b"));
        if is_float {
            clean
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(pos, format!("bad float `{raw}`")))
        } else {
            clean
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(pos, format!("bad integer `{raw}`")))
        }
    }

    /// `[v, v, …]`, possibly spanning lines, trailing comma allowed.
    fn array(&mut self) -> Result<Value, TomlError> {
        let open = self.pos();
        self.bump(); // consume `[`
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err(open, "unclosed array")),
                Some(']') => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    break;
                }
                None => return Err(self.err(open, "unclosed array")),
                Some(c) => {
                    return Err(self.err(
                        self.pos(),
                        format!("unexpected {c:?} in array (expected `,` or `]`)"),
                    ))
                }
            }
        }
        Ok(Value::Array(items))
    }

    /// `{ k = v, … }` on one line.
    fn inline_table(&mut self) -> Result<Value, TomlError> {
        let open = self.pos();
        self.bump(); // consume `{`
        let mut table = Table::new(open);
        self.skip_inline_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Table(table));
        }
        loop {
            self.skip_inline_ws();
            let pos = self.pos();
            if self.peek() == Some('\n') || self.peek().is_none() {
                return Err(self.err(open, "unclosed inline table (must fit on one line)"));
            }
            let path = self.key_path()?;
            self.skip_inline_ws();
            if self.peek() != Some('=') {
                return Err(self.err(self.pos(), "expected `=` after key"));
            }
            self.bump();
            self.skip_inline_ws();
            let value = self.value()?;
            Self::insert(&mut table, &path, value, pos)?;
            self.skip_inline_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some('}') => {
                    self.bump();
                    break;
                }
                _ => {
                    return Err(self.err(
                        self.pos(),
                        "expected `,` or `}` in inline table".to_string(),
                    ))
                }
            }
        }
        Ok(Value::Table(table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(err: &TomlError) -> (usize, usize) {
        (err.pos.line, err.pos.col)
    }

    #[test]
    fn scalars_parse() {
        let t = parse(
            "s = \"hi\"\nlit = 'raw\\n'\ni = 42\nneg = -3\nsep = 1_000\nf = 2.5\ne = 1e3\nb = true\nb2 = false\n",
        )
        .unwrap();
        assert_eq!(t.get("s").unwrap().value.as_str(), Some("hi"));
        assert_eq!(t.get("lit").unwrap().value.as_str(), Some("raw\\n"));
        assert_eq!(t.get("i").unwrap().value.as_int(), Some(42));
        assert_eq!(t.get("neg").unwrap().value.as_int(), Some(-3));
        assert_eq!(t.get("sep").unwrap().value.as_int(), Some(1000));
        assert_eq!(t.get("f").unwrap().value.as_f64(), Some(2.5));
        assert_eq!(t.get("e").unwrap().value.as_f64(), Some(1000.0));
        assert_eq!(t.get("b").unwrap().value.as_bool(), Some(true));
        assert_eq!(t.get("b2").unwrap().value.as_bool(), Some(false));
    }

    #[test]
    fn tables_and_dotted_headers() {
        let t = parse("[a]\nx = 1\n[a.b]\ny = 2\n[scale.tiny]\nd = 2\n").unwrap();
        let a = t.get("a").unwrap().value.as_table().unwrap();
        assert_eq!(a.get("x").unwrap().value.as_int(), Some(1));
        let b = a.get("b").unwrap().value.as_table().unwrap();
        assert_eq!(b.get("y").unwrap().value.as_int(), Some(2));
        let scale = t.get("scale").unwrap().value.as_table().unwrap();
        assert!(scale.get("tiny").is_some());
    }

    #[test]
    fn arrays_of_tables_accumulate() {
        let t = parse("[[axis]]\nname = \"a\"\n[[axis]]\nname = \"b\"\n").unwrap();
        let axes = t.get("axis").unwrap().value.as_array().unwrap();
        assert_eq!(axes.len(), 2);
        let names: Vec<&str> = axes
            .iter()
            .map(|a| {
                a.value
                    .as_table()
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .value
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn nested_arrays_of_tables() {
        let t = parse(
            "[[axis]]\nname = \"link\"\n[[axis.values]]\nlabel = \"x\"\n[[axis.values]]\nlabel = \"y\"\n[[axis]]\nname = \"other\"\n",
        )
        .unwrap();
        let axes = t.get("axis").unwrap().value.as_array().unwrap();
        assert_eq!(axes.len(), 2);
        let first = axes[0].value.as_table().unwrap();
        let values = first.get("values").unwrap().value.as_array().unwrap();
        assert_eq!(values.len(), 2);
        assert!(axes[1].value.as_table().unwrap().get("values").is_none());
    }

    #[test]
    fn multiline_arrays_and_inline_tables() {
        let t = parse(
            "steps = [\n  [0.0, 6.0],  # comment\n  [1.0, 18.0],\n]\nlink = { constant_mbps = 12.0 }\n",
        )
        .unwrap();
        let steps = t.get("steps").unwrap().value.as_array().unwrap();
        assert_eq!(steps.len(), 2);
        let link = t.get("link").unwrap().value.as_table().unwrap();
        assert_eq!(
            link.get("constant_mbps").unwrap().value.as_f64(),
            Some(12.0)
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let t = parse("# header\n\na = 1 # trailing\n\n# tail\n").unwrap();
        assert_eq!(t.get("a").unwrap().value.as_int(), Some(1));
    }

    #[test]
    fn positions_are_line_and_column() {
        let t = parse("a = 1\n  b = \"x\"\n").unwrap();
        assert_eq!(t.get("a").unwrap().pos, Pos { line: 1, col: 5 });
        assert_eq!(t.get("b").unwrap().pos, Pos { line: 2, col: 7 });
    }

    #[test]
    fn error_garbage_value() {
        let e = parse("a = @").unwrap_err();
        assert_eq!(at(&e), (1, 5));
    }

    #[test]
    fn error_unterminated_string_points_at_open_quote() {
        let e = parse("a = 1\nb = \"oops\n").unwrap_err();
        assert_eq!(at(&e), (2, 5));
    }

    #[test]
    fn error_duplicate_key() {
        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(at(&e), (2, 1));
        assert!(e.message.contains("duplicate key"), "{e}");
    }

    #[test]
    fn error_duplicate_table() {
        let e = parse("[t]\na = 1\n[t]\nb = 2\n").unwrap_err();
        assert_eq!(at(&e), (3, 1));
        assert!(e.message.contains("defined twice"), "{e}");
    }

    #[test]
    fn error_missing_equals() {
        let e = parse("a 1\n").unwrap_err();
        assert_eq!(at(&e), (1, 3));
        assert!(e.message.contains("expected `=`"), "{e}");
    }

    #[test]
    fn error_trailing_junk_after_value() {
        let e = parse("a = 1 2\n").unwrap_err();
        assert_eq!(at(&e), (1, 7));
    }

    #[test]
    fn error_unclosed_array() {
        let e = parse("a = [1, 2\n").unwrap_err();
        assert_eq!(at(&e), (1, 5));
        assert!(e.message.contains("unclosed array"), "{e}");
    }

    #[test]
    fn error_inline_table_must_be_single_line() {
        let e = parse("a = { x = 1,\n y = 2 }\n").unwrap_err();
        assert_eq!(at(&e), (1, 5));
        assert!(e.message.contains("one line"), "{e}");
    }

    #[test]
    fn error_bad_number() {
        let e = parse("a = 1.2.3\n").unwrap_err();
        assert_eq!(at(&e), (1, 5));
        assert!(e.message.contains("bad float"), "{e}");
    }

    #[test]
    fn error_multiline_string_unsupported() {
        let e = parse("a = \"\"\"x\"\"\"\n").unwrap_err();
        assert!(e.message.contains("multi-line"), "{e}");
    }

    #[test]
    fn error_array_of_tables_over_table() {
        let e = parse("[t]\na = 1\n[[t]]\nb = 2\n").unwrap_err();
        assert_eq!(at(&e), (3, 1));
    }

    #[test]
    fn display_includes_line_and_column() {
        let e = parse("a = @").unwrap_err();
        assert_eq!(
            format!("{e}"),
            "line 1, column 5: unexpected '@' (expected a value)"
        );
    }
}
