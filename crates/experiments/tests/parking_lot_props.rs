//! Property tests for parking-lot route construction.
//!
//! Two invariants, over randomly drawn hop counts, per-hop rates and
//! qdisc capabilities, and flow entry/exit hops:
//!
//! * **route visit**: a flow's data packets traverse exactly the hops
//!   `entry..=exit`, in path order — zero packets are ever offered to a
//!   hop outside that span, every hop inside it sees traffic, and no hop
//!   receives more than its predecessor forwarded;
//! * **per-hop conservation**: at any quiescent point, every packet (and
//!   byte) a hop was offered is accounted for — delivered downstream,
//!   dropped, or still sitting in the hop's qdisc.
//!
//! Both read the per-link metrics records directly (warmup is zero, so
//! the epoch gate never discards an event), not the flow-level report.

use experiments::engine::{
    AbcRouterConfig, FlowSchedule, FlowSpec, HopQdisc, ParkingHop, ScenarioEngine, ScenarioSpec,
};
use experiments::scenario::LinkSpec;
use experiments::Scheme;
use netsim::packet::MTU_BYTES;
use netsim::rate::Rate;
use netsim::time::SimDuration;
use proptest::prelude::*;

/// Build an `n`-hop lot whose per-hop rate and qdisc are carved out of
/// the two sampled bitmasks: rates span 8–15 Mbit/s, qdiscs cycle
/// through all four [`HopQdisc`] arms.
fn lot(n: usize, rate_mask: u64, qdisc_mask: u64) -> Vec<ParkingHop> {
    (0..n)
        .map(|i| {
            let mbps = 8 + ((rate_mask >> (3 * i)) & 7);
            let hop = ParkingHop::new(LinkSpec::Constant(Rate::from_mbps(mbps as f64)));
            match (qdisc_mask >> (2 * i)) & 3 {
                0 => hop, // SchemeDefault
                1 => hop.qdisc(HopQdisc::DropTail),
                2 => hop.qdisc(HopQdisc::Codel),
                _ => hop.qdisc(HopQdisc::Abc(AbcRouterConfig::default())),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn routes_visit_declared_hops_in_order_and_conserve_bytes(
        n_raw in 2usize..=5,
        entry_raw in 0usize..=64,
        span_raw in 0usize..=64,
        rate_mask in 0u64..=u64::MAX / 2,
        qdisc_mask in 0u64..=u64::MAX / 2,
        seed in 1u64..=8,
    ) {
        let n = n_raw;
        let entry = entry_raw % n;
        let exit = entry + span_raw % (n - entry);
        let mut spec = ScenarioSpec::parking_lot(Scheme::AbcCubic, lot(n, rate_mask, qdisc_mask))
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::ZERO)
            .seed(seed);
        spec.flows = FlowSchedule::Explicit(vec![FlowSpec::new("main")
            .entry_hop(entry)
            .exit_hop(exit)]);

        let mut built = ScenarioEngine::with_threads(1).build(&spec);
        built.run_to_end();

        let tags: Vec<&'static str> = built.hops.iter().map(|(t, _)| *t).collect();
        prop_assert_eq!(tags.len(), n, "expected one metrics tag per hop");

        let hub = built.hub.borrow();
        let mut prev_delivered: Option<u64> = None;
        for (i, tag) in tags.iter().enumerate() {
            let rec = hub.links.get(tag).cloned().unwrap_or_default();
            let on_route = (entry..=exit).contains(&i);

            // --- route visit ---
            if on_route {
                prop_assert!(
                    rec.offered_pkts > 0,
                    "hop {tag} is on the route ({entry}..={exit}) but saw no packets"
                );
                if let Some(upstream) = prev_delivered {
                    prop_assert!(
                        rec.offered_pkts <= upstream,
                        "hop {tag} was offered {} pkts but its upstream hop only \
                         delivered {upstream} — packets skipped a hop",
                        rec.offered_pkts
                    );
                }
                prev_delivered = Some(rec.delivered_pkts);
            } else {
                prop_assert_eq!(
                    rec.offered_pkts,
                    0,
                    "hop {} is off the route ({}..={}) but was offered packets",
                    tag,
                    entry,
                    exit
                );
            }

            // --- per-hop conservation ---
            let q = built.link_queue(tag).qdisc();
            let queued_pkts = q.len_pkts() as u64;
            prop_assert_eq!(
                rec.offered_pkts,
                rec.delivered_pkts + rec.dropped_pkts + queued_pkts,
                "hop {}: offered {} != delivered {} + dropped {} + queued {}",
                tag,
                rec.offered_pkts,
                rec.delivered_pkts,
                rec.dropped_pkts,
                queued_pkts
            );
            // Every data packet on a parking lot is MTU-sized (ACKs take
            // the direct back route), so the byte ledger closes exactly.
            prop_assert_eq!(
                rec.offered_bytes,
                rec.delivered_bytes + rec.dropped_pkts * MTU_BYTES as u64 + q.len_bytes(),
                "hop {}: byte ledger does not close",
                tag
            );
        }
    }
}
