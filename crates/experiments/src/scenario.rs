//! The single-bottleneck scenario runner behind most figures: N flows of
//! one scheme over one (emulated cellular or synthetic) link.

use crate::report::{downsample, Report};
use crate::scheme::Scheme;
use cellular::CellTrace;
use netsim::flow::{Sender, Sink, TrafficSource};
use netsim::link::{ConstantRate, RateProcess, SerialLink, SquareWave, StepSchedule, Transmitter};
use netsim::linkqueue::LinkQueue;
use netsim::metrics::{new_hub, Metrics};
use netsim::packet::{FlowId, NodeId, Route};
use netsim::rate::Rate;
use netsim::sim::Simulator;
use netsim::time::{SimDuration, SimTime};

/// The bottleneck link of a scenario.
#[derive(Debug, Clone)]
pub enum LinkSpec {
    /// Mahimahi-style trace (cellular emulation).
    Trace(CellTrace),
    Constant(Rate),
    Square {
        a: Rate,
        b: Rate,
        half_period: SimDuration,
    },
    Steps(Vec<(SimTime, Rate)>),
}

impl LinkSpec {
    pub fn build(&self) -> Box<dyn Transmitter> {
        match self {
            LinkSpec::Trace(t) => Box::new(t.to_link()),
            LinkSpec::Constant(r) => Box::new(SerialLink::new(ConstantRate(*r))),
            LinkSpec::Square { a, b, half_period } => {
                Box::new(SerialLink::new(SquareWave::new(*a, *b, *half_period)))
            }
            LinkSpec::Steps(steps) => {
                Box::new(SerialLink::new(StepSchedule::new(steps.clone())))
            }
        }
    }

    /// Capacity curve for plotting, sampled per `step`.
    pub fn capacity_series(&self, until: SimDuration, step: SimDuration) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + until {
            let r = match self {
                LinkSpec::Trace(tr) => tr.rate_in_window(t, step),
                LinkSpec::Constant(r) => *r,
                LinkSpec::Square { a, b, half_period } => {
                    SquareWave::new(*a, *b, *half_period).rate_at(t)
                }
                LinkSpec::Steps(steps) => StepSchedule::new(steps.clone()).rate_at(t),
            };
            out.push((t.as_secs_f64(), r.mbps()));
            t += step;
        }
        out
    }
}

/// A single-bottleneck scenario.
#[derive(Clone)]
pub struct CellScenario {
    pub scheme: Scheme,
    pub link: LinkSpec,
    /// Path round-trip propagation delay.
    pub rtt: SimDuration,
    pub buffer_pkts: usize,
    pub n_flows: u32,
    pub duration: SimDuration,
    /// Measurements before this offset are discarded.
    pub warmup: SimDuration,
    /// Flow i starts at `i × stagger` (Fig. 3's joins).
    pub stagger: SimDuration,
    /// Also stop flows one by one: flow i stops at
    /// `duration − (n−1−i)·stagger` (Fig. 3's departures).
    pub stagger_departures: bool,
    /// Per-flow application pattern.
    pub app: TrafficSource,
    /// PK-ABC: let the router control law see µ(t + lookahead).
    pub oracle_lookahead: Option<SimDuration>,
}

impl CellScenario {
    pub fn new(scheme: Scheme, link: LinkSpec) -> Self {
        CellScenario {
            scheme,
            link,
            rtt: SimDuration::from_millis(100),
            buffer_pkts: 250,
            n_flows: 1,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(5),
            stagger: SimDuration::ZERO,
            stagger_departures: false,
            app: TrafficSource::Backlogged,
            oracle_lookahead: None,
        }
    }

    /// Build the simulator without running it (callers that need to sample
    /// state mid-run use this, then `run_chunk`/`finish`).
    pub fn build(&self) -> BuiltScenario {
        let mut sim = Simulator::new();
        let hub = new_hub();
        hub.borrow_mut()
            .set_epoch(SimTime::ZERO + self.warmup);
        let link_id = sim.reserve_node();
        let mut sender_ids = Vec::new();

        // split the propagation RTT: ¼ sender→link, ¼ link→sink, ½ back
        let q1 = self.rtt / 4;
        let back_d = self.rtt / 2;

        for i in 0..self.n_flows {
            let flow = FlowId(i + 1);
            let sender_id = sim.reserve_node();
            let sink_id = sim.reserve_node();
            let fwd = Route::new(vec![(link_id, q1), (sink_id, q1)]);
            let back = Route::new(vec![(sender_id, back_d)]);
            sim.install_node(
                sink_id,
                Box::new(Sink::new(flow, back).with_metrics(hub.clone())),
            );
            let mut sender = Sender::new(flow, self.scheme.make_cc(), fwd, self.app)
                .with_start_at(SimTime::ZERO + self.stagger * i as u64);
            if self.stagger_departures && !self.stagger.is_zero() {
                let lead = (self.n_flows - 1 - i) as u64;
                let stop = (SimTime::ZERO + self.duration)
                    .saturating_sub(self.stagger * lead);
                sender = sender.with_stop_at(stop);
            }
            sim.install_node(sender_id, Box::new(sender));
            sender_ids.push(sender_id);
        }

        let mut lq = LinkQueue::new(
            self.scheme.make_qdisc(self.buffer_pkts),
            self.link.build(),
        )
        .with_metrics("bottleneck", hub.clone());
        if let Some(look) = self.oracle_lookahead {
            lq = lq.with_oracle_lookahead(look);
        }
        sim.install_node(link_id, Box::new(lq));

        BuiltScenario {
            sim,
            hub,
            link_id,
            sender_ids,
            scheme: self.scheme,
            link: self.link.clone(),
            duration: self.duration,
            warmup: self.warmup,
        }
    }

    /// Build, run to completion, and report.
    pub fn run(&self) -> Report {
        let mut b = self.build();
        b.run_to_end();
        b.finish()
    }
}

/// A constructed scenario, exposing the simulator for mid-run sampling.
pub struct BuiltScenario {
    pub sim: Simulator,
    pub hub: Metrics,
    pub link_id: NodeId,
    pub sender_ids: Vec<NodeId>,
    scheme: Scheme,
    link: LinkSpec,
    duration: SimDuration,
    warmup: SimDuration,
}

impl BuiltScenario {
    pub fn run_to_end(&mut self) {
        self.sim.run_until(SimTime::ZERO + self.duration);
    }

    /// Advance simulated time by `d` (for sampling loops).
    pub fn run_chunk(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    pub fn end_time(&self) -> SimTime {
        SimTime::ZERO + self.duration
    }

    /// Downcast a sender for window inspection.
    pub fn sender(&self, idx: usize) -> &Sender {
        self.sim
            .node(self.sender_ids[idx])
            .and_then(|n| n.as_any().downcast_ref())
            .expect("sender node")
    }

    pub fn finish(self) -> Report {
        // account link opportunities over the measured window
        let end = SimTime::ZERO + self.duration;
        {
            let lq: &LinkQueue = self
                .sim
                .node(self.link_id)
                .and_then(|n| n.as_any().downcast_ref())
                .expect("link node");
            lq.finalize_opportunity(end);
        }
        let hub = self.hub.borrow();
        let window = self.duration.saturating_sub(self.warmup);
        static EMPTY: std::sync::OnceLock<netsim::metrics::LinkRecord> = std::sync::OnceLock::new();
        let link = hub
            .links
            .get("bottleneck")
            .unwrap_or_else(|| EMPTY.get_or_init(Default::default));
        let qdelay_series: Vec<(f64, f64)> = link
            .qdelay_series
            .iter()
            .map(|(t, d)| (t.as_secs_f64(), d.as_millis_f64()))
            .collect();
        let flow_tputs: Vec<f64> = hub
            .flows
            .values()
            .map(|f| f.throughput_over(window) / 1e6)
            .collect();
        Report {
            scheme: self.scheme.name(),
            utilization: link.utilization(),
            delay_ms: hub.delay_summary_ms(),
            qdelay_ms: link.qdelay_summary_ms(),
            total_tput_mbps: flow_tputs.iter().sum(),
            jain: hub.jain(window),
            drops: link.dropped_pkts,
            flow_tputs_mbps: flow_tputs,
            tput_series: hub.total_throughput_series_mbps(),
            qdelay_series: downsample(&qdelay_series, 600),
            capacity_series: self
                .link
                .capacity_series(self.duration, SimDuration::from_millis(100)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abc_on_constant_link_reaches_eta() {
        let r = CellScenario::new(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .run();
        assert!(r.utilization > 0.9, "{}", r.row());
        assert!(r.qdelay_ms.p95 < 60.0, "{}", r.row());
    }

    #[test]
    fn cubic_fills_droptail_buffer() {
        let r = CellScenario::new(Scheme::Cubic, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .run();
        assert!(r.utilization > 0.9, "{}", r.row());
        // 250-pkt buffer at 12 Mbit/s = 250 ms of queuing when full
        assert!(
            r.qdelay_ms.p95 > 100.0,
            "Cubic should bufferbloat: {}",
            r.row()
        );
    }

    #[test]
    fn cubic_codel_cuts_delay() {
        let cubic = CellScenario::new(Scheme::Cubic, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .run();
        let codel =
            CellScenario::new(Scheme::CubicCodel, LinkSpec::Constant(Rate::from_mbps(12.0)))
                .run();
        assert!(
            codel.qdelay_ms.p95 < cubic.qdelay_ms.p95 / 2.0,
            "codel {} vs cubic {}",
            codel.qdelay_ms.p95,
            cubic.qdelay_ms.p95
        );
    }

    #[test]
    fn trace_link_scenario_runs() {
        let trace = cellular::builtin("Verizon1").unwrap();
        let r = CellScenario::new(Scheme::Abc, LinkSpec::Trace(trace)).run();
        assert!(r.utilization > 0.3, "{}", r.row());
        assert!(r.total_tput_mbps > 0.5, "{}", r.row());
    }

    #[test]
    fn sampling_interface_exposes_windows() {
        let sc = CellScenario::new(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)));
        let mut b = sc.build();
        b.run_chunk(SimDuration::from_secs(5));
        let s = b.sender(0);
        assert!(s.cwnd_pkts() > 1.0);
    }
}
