//! ABC's Wi-Fi link-rate estimator (§4.1) in action: the 802.11n MAC model
//! transmits A-MPDU batches while a non-backlogged sender offers varying
//! loads, and the estimator recovers the full-batch capacity from partial
//! batches (Eqs. 5–8).
//!
//! ```sh
//! cargo run --release --example wifi_link_estimation
//! ```
//!
//! `WifiScenario` and `estimator_accuracy` run on the scenario engine's
//! Wi-Fi topology; the estimator internals are reached through
//! `BuiltScenario::wifi_ap_mut`.

use abc_repro::experiments::{estimator_accuracy, McsSpec, Scheme, WifiScenario};
use abc_repro::netsim::time::SimDuration;

fn main() {
    println!("Wi-Fi link-rate estimation (Fig. 5's setup)\n");
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>9}",
        "MCS", "offered Mb/s", "predicted", "true capacity", "error"
    );
    for mcs in [1u8, 4, 7] {
        for offered in [2.0, 6.0, 12.0, 24.0, 40.0] {
            let (off, pred, truth) = estimator_accuracy(mcs, offered, SimDuration::from_secs(20));
            println!(
                "{:>5} {:>14.1} {:>14.2} {:>14.2} {:>+8.1}%",
                mcs,
                off,
                pred,
                truth,
                (pred - truth) / truth * 100.0
            );
        }
        println!();
    }
    println!("(low-load rows sit on the 2×-dequeue-rate cap — the dashed line in Fig. 5;\n loaded rows land within ~5% of the true capacity)");

    // and the end-to-end effect: ABC with the estimator in the loop vs Cubic
    println!("\nEnd-to-end on an alternating-MCS link (1↔7 every 2 s), 45 s:");
    for scheme in [Scheme::AbcDt(60), Scheme::Cubic] {
        let r = WifiScenario::new(
            scheme,
            1,
            McsSpec::Alternating(1, 7, SimDuration::from_secs(2)),
        )
        .run();
        println!(
            "  {:<10} tput {:>6.2} Mbit/s   95p delay {:>6.0} ms",
            r.scheme, r.total_tput_mbps, r.delay_ms.p95
        );
    }
}
