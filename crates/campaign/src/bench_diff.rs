//! Regression gating over the committed `BENCH_*.json` trajectories.
//!
//! A trajectory is a JSON array of entries, newest last; each entry maps
//! metric keys to numbers. `bench-diff` compares the newest entry (the
//! candidate, typically appended by a fresh `cargo bench` run) against
//! the one before it (the committed baseline), key by key:
//!
//! * `*_per_sec` keys are throughputs — higher is better; the candidate
//!   regresses when it falls below `(1 − threshold) × baseline`;
//! * `*_ns_per_op` keys are unit costs — lower is better; the candidate
//!   regresses when it rises above `(1 + threshold) × baseline`.
//!
//! Only keys present in **both** entries are compared, so schema
//! migrations (an entry gaining a new regime) gate on the shared keys
//! instead of erroring. Everything else (`schema`, `unix_time`, raw
//! event counts) is context, not a gated metric.

use crate::json::Value;

/// How one shared metric moved between baseline and candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// The metric key (`tiny_events_per_sec`, `queue_churn_ns_per_op`, …).
    pub key: String,
    /// The second-to-last entry's value.
    pub baseline: f64,
    /// The newest entry's value.
    pub candidate: f64,
    /// Signed relative change, positive when the metric *improved*
    /// (throughput up, or unit cost down).
    pub improvement: f64,
    /// Whether the change exceeds the gate threshold in the bad direction.
    pub regressed: bool,
}

/// The comparison of a trajectory's two newest entries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiffReport {
    /// Per-metric deltas, in the candidate entry's key order.
    pub deltas: Vec<BenchDelta>,
    /// The gate threshold the deltas were judged against.
    pub threshold: f64,
}

impl BenchDiffReport {
    /// True when any shared metric regressed past the threshold.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// Human-readable table, one row per gated metric.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "# bench-diff — newest entry vs previous (gate: {:.0}%)",
            self.threshold * 100.0
        )
        .unwrap();
        writeln!(
            out,
            "{:<34} {:>14} {:>14} {:>9}  verdict",
            "metric", "baseline", "candidate", "change"
        )
        .unwrap();
        for d in &self.deltas {
            writeln!(
                out,
                "{:<34} {:>14.1} {:>14.1} {:>+8.1}%  {}",
                d.key,
                d.baseline,
                d.candidate,
                d.improvement * 100.0,
                if d.regressed { "REGRESSED" } else { "ok" }
            )
            .unwrap();
        }
        out
    }

    /// Machine-readable single-line JSON for CI artifacts: the threshold,
    /// the overall verdict, and every delta. Deterministic key order, so
    /// two runs over the same trajectory produce identical bytes.
    pub fn render_json(&self) -> String {
        Value::Obj(vec![
            ("threshold".into(), Value::num(self.threshold)),
            ("regressed".into(), Value::Bool(self.has_regressions())),
            (
                "deltas".into(),
                Value::Arr(
                    self.deltas
                        .iter()
                        .map(|d| {
                            Value::Obj(vec![
                                ("key".into(), Value::str(&d.key)),
                                ("baseline".into(), Value::num(d.baseline)),
                                ("candidate".into(), Value::num(d.candidate)),
                                ("improvement".into(), Value::num(d.improvement)),
                                ("regressed".into(), Value::Bool(d.regressed)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render()
    }
}

/// Errors a malformed trajectory produces (exit-2 material, distinct
/// from the exit-1 "regression found" gate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchDiffError(pub String);

impl std::fmt::Display for BenchDiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn gated_metrics(entry: &Value) -> Result<Vec<(String, f64)>, BenchDiffError> {
    let obj = entry
        .as_obj()
        .ok_or_else(|| BenchDiffError("trajectory entry is not an object".into()))?;
    let mut out = Vec::new();
    for (k, v) in obj {
        if !k.ends_with("_per_sec") && !k.ends_with("_ns_per_op") {
            continue;
        }
        let x = v
            .as_f64()
            .ok_or_else(|| BenchDiffError(format!("metric `{k}` is not a number")))?;
        if !x.is_finite() || x <= 0.0 {
            return Err(BenchDiffError(format!("metric `{k}` is not positive: {x}")));
        }
        out.push((k.clone(), x));
    }
    Ok(out)
}

/// Compare the two newest entries of a parsed trajectory. Returns
/// `Ok(None)` when the trajectory holds fewer than two entries (nothing
/// to gate — a fresh file must not fail its first CI run).
pub fn bench_diff(
    trajectory: &Value,
    threshold: f64,
) -> Result<Option<BenchDiffReport>, BenchDiffError> {
    if !threshold.is_finite() || !(0.0..1.0).contains(&threshold) {
        return Err(BenchDiffError(format!(
            "threshold must be in [0, 1), got {threshold}"
        )));
    }
    let entries = trajectory
        .as_arr()
        .ok_or_else(|| BenchDiffError("trajectory is not a JSON array".into()))?;
    let [.., baseline, candidate] = entries else {
        return Ok(None);
    };
    let base = gated_metrics(baseline)?;
    let deltas = gated_metrics(candidate)?
        .into_iter()
        .filter_map(|(key, cand)| {
            let (_, b) = base.iter().find(|(k, _)| *k == key)?;
            let higher_is_better = key.ends_with("_per_sec");
            let (improvement, regressed) = if higher_is_better {
                (cand / b - 1.0, cand < (1.0 - threshold) * b)
            } else {
                (b / cand - 1.0, cand > (1.0 + threshold) * b)
            };
            Some(BenchDelta {
                key,
                baseline: *b,
                candidate: cand,
                improvement,
                regressed,
            })
        })
        .collect();
    Ok(Some(BenchDiffReport { deltas, threshold }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn traj(entries: &[&[(&str, f64)]]) -> Value {
        Value::Arr(
            entries
                .iter()
                .map(|e| {
                    Value::Obj(
                        e.iter()
                            .map(|(k, v)| (k.to_string(), Value::num(*v)))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn unchanged_metrics_pass() {
        let t = traj(&[
            &[
                ("tiny_events_per_sec", 1e6),
                ("queue_churn_ns_per_op", 60.0),
            ],
            &[
                ("tiny_events_per_sec", 1e6),
                ("queue_churn_ns_per_op", 60.0),
            ],
        ]);
        let r = bench_diff(&t, 0.2).unwrap().unwrap();
        assert_eq!(r.deltas.len(), 2);
        assert!(!r.has_regressions());
    }

    #[test]
    fn throughput_drop_past_threshold_regresses() {
        let t = traj(&[
            &[("tiny_events_per_sec", 1e6)],
            &[("tiny_events_per_sec", 0.7e6)],
        ]);
        let r = bench_diff(&t, 0.2).unwrap().unwrap();
        assert!(r.has_regressions());
        assert!(r.deltas[0].improvement < 0.0);
        // a 21% unit-cost rise also regresses at the default gate
        let t = traj(&[
            &[("queue_churn_ns_per_op", 100.0)],
            &[("queue_churn_ns_per_op", 121.0)],
        ]);
        assert!(bench_diff(&t, 0.2).unwrap().unwrap().has_regressions());
    }

    #[test]
    fn within_threshold_changes_pass() {
        let t = traj(&[
            &[
                ("tiny_events_per_sec", 1e6),
                ("queue_churn_ns_per_op", 100.0),
            ],
            &[
                ("tiny_events_per_sec", 0.85e6),
                ("queue_churn_ns_per_op", 115.0),
            ],
        ]);
        assert!(!bench_diff(&t, 0.2).unwrap().unwrap().has_regressions());
    }

    #[test]
    fn schema_migration_gates_on_shared_keys_only() {
        // v1 → v2: the new dense keys have no baseline and are skipped
        let t = traj(&[
            &[("tiny_events_per_sec", 1e6)],
            &[
                ("tiny_events_per_sec", 1.1e6),
                ("dense_1k_flows_events_per_sec", 5e6),
            ],
        ]);
        let r = bench_diff(&t, 0.2).unwrap().unwrap();
        assert_eq!(r.deltas.len(), 1);
        assert_eq!(r.deltas[0].key, "tiny_events_per_sec");
    }

    #[test]
    fn short_trajectories_have_nothing_to_gate() {
        assert!(bench_diff(&traj(&[&[("x_per_sec", 1.0)]]), 0.2)
            .unwrap()
            .is_none());
        assert!(bench_diff(&traj(&[]), 0.2).unwrap().is_none());
    }

    #[test]
    fn malformed_trajectories_error() {
        assert!(bench_diff(&Value::num(3.0), 0.2).is_err());
        let t = json::parse(r#"[{"a_per_sec": "fast"}, {"a_per_sec": 2.0}]"#).unwrap();
        assert!(bench_diff(&t, 0.2).is_err());
        let ok = traj(&[&[("a_per_sec", 1.0)], &[("a_per_sec", 1.0)]]);
        assert!(bench_diff(&ok, 1.5).is_err());
        assert!(bench_diff(&ok, -0.1).is_err());
    }

    #[test]
    fn committed_trajectory_parses_and_gates() {
        // the real BENCH_netsim.json at the repo root must stay diffable
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netsim.json");
        let text = std::fs::read_to_string(path).expect("BENCH_netsim.json");
        let traj = json::parse(&text).expect("valid JSON");
        bench_diff(&traj, 0.2).expect("diffable trajectory");
    }
}
