//! The scheme × trace sweep engine behind Table 1 and Figs. 8/9/15/16/18.

use crate::report::Report;
use crate::scenario::{CellScenario, LinkSpec};
use crate::scheme::Scheme;
use cellular::CellTrace;
use netsim::time::SimDuration;

pub struct MatrixCell {
    pub scheme: Scheme,
    pub trace: String,
    pub report: Report,
}

/// Run every scheme over every trace.
pub fn run_matrix(
    schemes: &[Scheme],
    traces: &[CellTrace],
    rtt: SimDuration,
    duration: SimDuration,
) -> Vec<MatrixCell> {
    let mut out = Vec::new();
    for trace in traces {
        for &scheme in schemes {
            let mut sc = CellScenario::new(scheme, LinkSpec::Trace(trace.clone()));
            sc.rtt = rtt;
            sc.duration = duration;
            out.push(MatrixCell {
                scheme,
                trace: trace.name.clone(),
                report: sc.run(),
            });
        }
    }
    out
}

/// Per-scheme averages across traces: (scheme, mean util, mean p95 delay,
/// mean mean-delay, mean p95 queuing delay).
pub fn averages(cells: &[MatrixCell], schemes: &[Scheme]) -> Vec<(Scheme, f64, f64, f64, f64)> {
    schemes
        .iter()
        .map(|&s| {
            let mine: Vec<&MatrixCell> = cells.iter().filter(|c| c.scheme == s).collect();
            let n = mine.len().max(1) as f64;
            let util = mine.iter().map(|c| c.report.utilization).sum::<f64>() / n;
            let p95 = mine.iter().map(|c| c.report.delay_ms.p95).sum::<f64>() / n;
            let mean = mine.iter().map(|c| c.report.delay_ms.mean).sum::<f64>() / n;
            let qp95 = mine.iter().map(|c| c.report.qdelay_ms.p95).sum::<f64>() / n;
            (s, util, p95, mean, qp95)
        })
        .collect()
}

/// The traces for a run: all eight, or a truncated fast subset.
pub fn traces(fast: bool) -> Vec<CellTrace> {
    let mut all = cellular::all_builtin();
    if fast {
        all.truncate(2);
    }
    all
}

pub fn sim_duration(fast: bool) -> SimDuration {
    if fast {
        SimDuration::from_secs(20)
    } else {
        SimDuration::from_secs(120)
    }
}
