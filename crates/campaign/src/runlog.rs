//! The campaign run ledger: schema-versioned (`abc-runlog/v1`) JSONL
//! bookkeeping of *wall-clock* run behavior, written beside — never
//! into — the results store.
//!
//! The store answers "what did the simulation measure"; the ledger
//! answers "where did fleet time go": per-point spans (worker slot,
//! queued/start/end wall-ns, sim events, retries, abort reasons,
//! optional profile fractions), wave boundaries, and store-flush spans.
//! Wall-clock data is quarantined here by construction — emitting a
//! ledger (or enabling `--profile`) leaves the store byte-identical.
//!
//! The ledger's *structure* is still deterministic: zero the wall
//! fields with [`normalize_jsonl`] and the remaining bytes (ordinal
//! set, coords, event counts, attempt counts, wave composition) are
//! bit-identical across reruns and 1/2/4/8-worker pools (pinned in
//! `tests/runlog.rs`).
//!
//! Downstream consumers: `abc-campaign trace-export` (Perfetto-loadable
//! Chrome trace JSON, [`crate::trace`]) and `abc-campaign report`
//! (run-health summary + cross-point sidecar aggregation,
//! [`crate::report`]).

use crate::json::{self, Value};
use crate::spec::Coords;
use std::path::{Path, PathBuf};

/// Version tag written as the `schema` field of a ledger's header line.
pub const SCHEMA: &str = "abc-runlog/v1";

/// Where (and with what header context) the runner writes its ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunLogConfig {
    /// Destination file; truncated and rewritten each run.
    pub path: PathBuf,
    /// Scale label for the header (`full`/`fast`/`tiny`), when known.
    pub scale: Option<String>,
    /// `(k, n)` shard selector recorded in the header, when sharded.
    pub shard: Option<(usize, usize)>,
}

impl RunLogConfig {
    /// A config writing to `path` with no scale/shard annotations.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        RunLogConfig {
            path: path.into(),
            scale: None,
            shard: None,
        }
    }

    /// Builder: annotate the header with a scale label.
    pub fn with_scale(mut self, scale: Option<String>) -> Self {
        self.scale = scale;
        self
    }

    /// Builder: annotate the header with a `(k, n)` shard selector.
    pub fn with_shard(mut self, shard: Option<(usize, usize)>) -> Self {
        self.shard = shard;
        self
    }
}

/// The ledger's first line: run-wide configuration context.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerHeader {
    /// Campaign name, as in the store header.
    pub campaign: String,
    /// Scale label, when the emitter knew it.
    pub scale: Option<String>,
    /// Points scheduled for execution this run (after skip/shard).
    pub points: usize,
    /// Worker-pool size. Wall-dependent context: zeroed by
    /// [`normalize_jsonl`].
    pub workers: usize,
    /// Points dispatched per wave.
    pub chunk: usize,
    /// `(k, n)` shard selector, when sharded.
    pub shard: Option<(usize, usize)>,
    /// Bounded panic-retry budget per point.
    pub retries: u32,
    /// Watchdog wall budget in seconds, when armed.
    pub watchdog_budget_s: Option<f64>,
    /// Whether the run continues past failed waves.
    pub keep_going: bool,
    /// Whether per-point profiling was on.
    pub profile: bool,
}

/// How one execution attempt of a point ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The attempt completed and produced a record.
    Ok,
    /// The attempt panicked (the payload message rides along).
    Panic(String),
    /// The watchdog cancelled the attempt (deterministic description).
    Watchdog(String),
}

impl SpanOutcome {
    /// Stable wire name: `ok`, `panic`, `watchdog`.
    pub fn name(&self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Panic(_) => "panic",
            SpanOutcome::Watchdog(_) => "watchdog",
        }
    }

    /// True for [`SpanOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, SpanOutcome::Ok)
    }

    /// The failure message, for the two failure variants.
    pub fn reason(&self) -> Option<&str> {
        match self {
            SpanOutcome::Ok => None,
            SpanOutcome::Panic(m) | SpanOutcome::Watchdog(m) => Some(m),
        }
    }
}

/// Headline fractions of one point's [`netsim::telemetry::ProfileReport`],
/// recorded on the span when the run profiles. All wall-derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileFractions {
    /// Fraction of attributed dispatch time in singleton `Deliver`s.
    pub deliver_frac: f64,
    /// Fraction in singleton `Timer`s.
    pub timer_frac: f64,
    /// Fraction in batched dispatch.
    pub batch_frac: f64,
    /// Packet-pool hit rate in `[0, 1]`.
    pub pool_hit_rate: f64,
    /// Mean timer-wheel near-heap occupancy.
    pub wheel_near_avg: f64,
    /// Mean timer-wheel overflow-heap occupancy.
    pub wheel_overflow_avg: f64,
    /// Simulator events per wall second.
    pub events_per_wall_sec: f64,
}

impl ProfileFractions {
    /// Project the span-sized summary out of a full profile report.
    pub fn of(p: &netsim::telemetry::ProfileReport) -> Self {
        use netsim::telemetry::Phase;
        ProfileFractions {
            deliver_frac: p.phase_frac(Phase::Deliver),
            timer_frac: p.phase_frac(Phase::Timer),
            batch_frac: p.phase_frac(Phase::Batch),
            pool_hit_rate: p.pool.hit_rate(),
            wheel_near_avg: p.avg_near,
            wheel_overflow_avg: p.avg_overflow,
            events_per_wall_sec: p.events_per_wall_sec,
        }
    }
}

/// One execution attempt of one campaign point. A point that retried
/// has several spans, `attempt` 0, 1, … — exactly one span per attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpan {
    /// Stable unfiltered ordinal, as in the store.
    pub ordinal: usize,
    /// Axis coordinates of the point.
    pub coords: Coords,
    /// 0-based attempt index; > 0 means this execution was a retry.
    pub attempt: u32,
    /// Worker slot that executed the attempt (wall-dependent).
    pub worker: usize,
    /// Wall-ns since run start when the wave containing the point was
    /// dispatched.
    pub queued_ns: u64,
    /// Wall-ns since run start when the attempt began executing.
    pub start_ns: u64,
    /// Wall-ns since run start when the attempt finished.
    pub end_ns: u64,
    /// Simulator events processed (0 for failed attempts).
    pub events: u64,
    /// `events` over the attempt's wall duration (wall-derived).
    pub events_per_sec: f64,
    /// How the attempt ended.
    pub outcome: SpanOutcome,
    /// Profile fractions, when the run profiled and the attempt
    /// completed.
    pub profile: Option<ProfileFractions>,
}

/// One dispatch wave: a chunk of points handed to the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveSpan {
    /// 0-based wave index.
    pub index: usize,
    /// Wall-ns since run start at dispatch.
    pub start_ns: u64,
    /// Wall-ns since run start when every point in the wave returned.
    pub end_ns: u64,
    /// Points dispatched in the wave.
    pub points: usize,
}

/// One store-flush span: the post-wave callback that streams finished
/// records to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushSpan {
    /// The wave whose results were flushed.
    pub wave: usize,
    /// Wall-ns since run start when the flush began.
    pub start_ns: u64,
    /// Wall-ns since run start when the flush returned.
    pub end_ns: u64,
}

/// A fully parsed run ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLedger {
    /// The header line.
    pub header: LedgerHeader,
    /// Every point span, in emission (expansion) order.
    pub points: Vec<PointSpan>,
    /// Wave boundaries, in order.
    pub waves: Vec<WaveSpan>,
    /// Store-flush spans, in order.
    pub flushes: Vec<FlushSpan>,
}

fn shard_str(shard: Option<(usize, usize)>) -> Value {
    match shard {
        Some((k, n)) => Value::str(format!("{k}/{n}")),
        None => Value::Null,
    }
}

fn opt_str(s: &Option<String>) -> Value {
    match s {
        Some(s) => Value::str(s),
        None => Value::Null,
    }
}

/// Render the header line.
pub fn render_header(h: &LedgerHeader) -> String {
    Value::Obj(vec![
        ("schema".into(), Value::str(SCHEMA)),
        ("campaign".into(), Value::str(&h.campaign)),
        ("scale".into(), opt_str(&h.scale)),
        ("points".into(), Value::num(h.points as f64)),
        ("workers".into(), Value::num(h.workers as f64)),
        ("chunk".into(), Value::num(h.chunk as f64)),
        ("shard".into(), shard_str(h.shard)),
        ("retries".into(), Value::num(h.retries as f64)),
        (
            "watchdog_budget_s".into(),
            h.watchdog_budget_s.map(Value::num).unwrap_or(Value::Null),
        ),
        ("keep_going".into(), Value::Bool(h.keep_going)),
        ("profile".into(), Value::Bool(h.profile)),
    ])
    .render()
}

fn coords_to_value(c: &Coords) -> Value {
    Value::Obj(
        c.0.iter()
            .map(|(a, l)| (a.clone(), Value::str(l)))
            .collect(),
    )
}

fn profile_to_value(p: &ProfileFractions) -> Value {
    Value::Obj(vec![
        ("deliver_frac".into(), Value::num(p.deliver_frac)),
        ("timer_frac".into(), Value::num(p.timer_frac)),
        ("batch_frac".into(), Value::num(p.batch_frac)),
        ("pool_hit_rate".into(), Value::num(p.pool_hit_rate)),
        ("wheel_near_avg".into(), Value::num(p.wheel_near_avg)),
        (
            "wheel_overflow_avg".into(),
            Value::num(p.wheel_overflow_avg),
        ),
        (
            "events_per_wall_sec".into(),
            Value::num(p.events_per_wall_sec),
        ),
    ])
}

/// Render one point-span line.
pub fn render_point(s: &PointSpan) -> String {
    let mut members = vec![
        ("span".into(), Value::str("point")),
        ("ordinal".into(), Value::num(s.ordinal as f64)),
        ("coords".into(), coords_to_value(&s.coords)),
        ("attempt".into(), Value::num(s.attempt as f64)),
        ("worker".into(), Value::num(s.worker as f64)),
        ("queued_ns".into(), Value::num(s.queued_ns as f64)),
        ("start_ns".into(), Value::num(s.start_ns as f64)),
        ("end_ns".into(), Value::num(s.end_ns as f64)),
        ("events".into(), Value::num(s.events as f64)),
        ("events_per_sec".into(), Value::num(s.events_per_sec)),
        ("outcome".into(), Value::str(s.outcome.name())),
    ];
    if let Some(reason) = s.outcome.reason() {
        members.push(("reason".into(), Value::str(reason)));
    }
    if let Some(p) = &s.profile {
        members.push(("profile".into(), profile_to_value(p)));
    }
    Value::Obj(members).render()
}

/// Render one wave-boundary line.
pub fn render_wave(w: &WaveSpan) -> String {
    Value::Obj(vec![
        ("span".into(), Value::str("wave")),
        ("index".into(), Value::num(w.index as f64)),
        ("start_ns".into(), Value::num(w.start_ns as f64)),
        ("end_ns".into(), Value::num(w.end_ns as f64)),
        ("points".into(), Value::num(w.points as f64)),
    ])
    .render()
}

/// Render one store-flush line.
pub fn render_flush(f: &FlushSpan) -> String {
    Value::Obj(vec![
        ("span".into(), Value::str("flush")),
        ("wave".into(), Value::num(f.wave as f64)),
        ("start_ns".into(), Value::num(f.start_ns as f64)),
        ("end_ns".into(), Value::num(f.end_ns as f64)),
    ])
    .render()
}

fn err_at(line: usize, msg: impl std::fmt::Display) -> String {
    format!("runlog line {line}: {msg}")
}

fn req_f64(v: &Value, key: &str, line: usize) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| err_at(line, format!("missing numeric \"{key}\"")))
}

fn req_u64(v: &Value, key: &str, line: usize) -> Result<u64, String> {
    Ok(req_f64(v, key, line)? as u64)
}

fn req_usize(v: &Value, key: &str, line: usize) -> Result<usize, String> {
    Ok(req_f64(v, key, line)? as usize)
}

fn req_str<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| err_at(line, format!("missing string \"{key}\"")))
}

fn req_bool(v: &Value, key: &str, line: usize) -> Result<bool, String> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(err_at(line, format!("missing boolean \"{key}\""))),
    }
}

fn parse_shard(v: &Value, line: usize) -> Result<Option<(usize, usize)>, String> {
    match v.get("shard") {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => {
            let (k, n) = s
                .split_once('/')
                .ok_or_else(|| err_at(line, "malformed shard"))?;
            match (k.parse(), n.parse()) {
                (Ok(k), Ok(n)) => Ok(Some((k, n))),
                _ => Err(err_at(line, "malformed shard")),
            }
        }
        Some(_) => Err(err_at(line, "malformed shard")),
    }
}

fn parse_header(v: &Value, line: usize) -> Result<LedgerHeader, String> {
    Ok(LedgerHeader {
        campaign: req_str(v, "campaign", line)?.to_string(),
        scale: v
            .get("scale")
            .and_then(Value::as_str)
            .map(|s| s.to_string()),
        points: req_usize(v, "points", line)?,
        workers: req_usize(v, "workers", line)?,
        chunk: req_usize(v, "chunk", line)?,
        shard: parse_shard(v, line)?,
        retries: req_u64(v, "retries", line)? as u32,
        watchdog_budget_s: v.get("watchdog_budget_s").and_then(Value::as_f64),
        keep_going: req_bool(v, "keep_going", line)?,
        profile: req_bool(v, "profile", line)?,
    })
}

fn parse_coords(v: &Value, line: usize) -> Result<Coords, String> {
    Ok(Coords(
        v.get("coords")
            .and_then(Value::as_obj)
            .ok_or_else(|| err_at(line, "missing \"coords\""))?
            .iter()
            .map(|(axis, label)| {
                label
                    .as_str()
                    .map(|l| (axis.clone(), l.to_string()))
                    .ok_or_else(|| err_at(line, "non-string coordinate label"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    ))
}

fn parse_profile(v: &Value, line: usize) -> Result<Option<ProfileFractions>, String> {
    let Some(p) = v.get("profile") else {
        return Ok(None);
    };
    Ok(Some(ProfileFractions {
        deliver_frac: req_f64(p, "deliver_frac", line)?,
        timer_frac: req_f64(p, "timer_frac", line)?,
        batch_frac: req_f64(p, "batch_frac", line)?,
        pool_hit_rate: req_f64(p, "pool_hit_rate", line)?,
        wheel_near_avg: req_f64(p, "wheel_near_avg", line)?,
        wheel_overflow_avg: req_f64(p, "wheel_overflow_avg", line)?,
        events_per_wall_sec: req_f64(p, "events_per_wall_sec", line)?,
    }))
}

fn parse_point(v: &Value, line: usize) -> Result<PointSpan, String> {
    let outcome = match req_str(v, "outcome", line)? {
        "ok" => SpanOutcome::Ok,
        "panic" => SpanOutcome::Panic(req_str(v, "reason", line)?.to_string()),
        "watchdog" => SpanOutcome::Watchdog(req_str(v, "reason", line)?.to_string()),
        other => return Err(err_at(line, format!("unknown outcome {other:?}"))),
    };
    Ok(PointSpan {
        ordinal: req_usize(v, "ordinal", line)?,
        coords: parse_coords(v, line)?,
        attempt: req_u64(v, "attempt", line)? as u32,
        worker: req_usize(v, "worker", line)?,
        queued_ns: req_u64(v, "queued_ns", line)?,
        start_ns: req_u64(v, "start_ns", line)?,
        end_ns: req_u64(v, "end_ns", line)?,
        events: req_u64(v, "events", line)?,
        events_per_sec: req_f64(v, "events_per_sec", line)?,
        outcome,
        profile: parse_profile(v, line)?,
    })
}

impl RunLedger {
    /// Serialize back to the exact JSONL wire form.
    pub fn to_jsonl(&self) -> String {
        let mut out = render_header(&self.header);
        out.push('\n');
        let mut flushes = self.flushes.iter().peekable();
        // Spans interleave in emission order: each wave's points (all
        // attempts of an ordinal are contiguous, and an ordinal runs in
        // exactly one wave), then its wave line, then its flush line.
        let mut taken = 0usize;
        for w in &self.waves {
            let mut ordinals_in_wave = 0usize;
            let mut last_ordinal = None;
            while taken < self.points.len() {
                let p = &self.points[taken];
                if last_ordinal != Some(p.ordinal) {
                    if ordinals_in_wave == w.points {
                        break;
                    }
                    ordinals_in_wave += 1;
                    last_ordinal = Some(p.ordinal);
                }
                out.push_str(&render_point(p));
                out.push('\n');
                taken += 1;
            }
            out.push_str(&render_wave(w));
            out.push('\n');
            if let Some(f) = flushes.peek() {
                if f.wave == w.index {
                    out.push_str(&render_flush(flushes.next().expect("peeked")));
                    out.push('\n');
                }
            }
        }
        // Points past the last wave line (a wave that never completed).
        for p in &self.points[taken..] {
            out.push_str(&render_point(p));
            out.push('\n');
        }
        out
    }

    /// Parse a ledger from its JSONL wire form.
    pub fn from_jsonl(text: &str) -> Result<RunLedger, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (i, first) = lines.next().ok_or("empty run ledger")?;
        let hv = json::parse(first).map_err(|e| err_at(i + 1, e))?;
        match hv.get("schema").and_then(Value::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(err_at(i + 1, format!("schema {s:?}, want {SCHEMA:?}"))),
            None => return Err(err_at(i + 1, "missing schema header")),
        }
        let header = parse_header(&hv, i + 1)?;
        let mut ledger = RunLedger {
            header,
            points: Vec::new(),
            waves: Vec::new(),
            flushes: Vec::new(),
        };
        for (i, line) in lines {
            let v = json::parse(line).map_err(|e| err_at(i + 1, e))?;
            match v.get("span").and_then(Value::as_str) {
                Some("point") => ledger.points.push(parse_point(&v, i + 1)?),
                Some("wave") => ledger.waves.push(WaveSpan {
                    index: req_usize(&v, "index", i + 1)?,
                    start_ns: req_u64(&v, "start_ns", i + 1)?,
                    end_ns: req_u64(&v, "end_ns", i + 1)?,
                    points: req_usize(&v, "points", i + 1)?,
                }),
                Some("flush") => ledger.flushes.push(FlushSpan {
                    wave: req_usize(&v, "wave", i + 1)?,
                    start_ns: req_u64(&v, "start_ns", i + 1)?,
                    end_ns: req_u64(&v, "end_ns", i + 1)?,
                }),
                other => return Err(err_at(i + 1, format!("unrecognized span {other:?}"))),
            }
        }
        Ok(ledger)
    }

    /// Read and parse a ledger file.
    pub fn load(path: &Path) -> Result<RunLedger, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_jsonl(&text)
    }
}

/// Zero the wall-clock fields of a rendered ledger so what remains is
/// the run's deterministic *structure*: every member named `*_ns`,
/// `events_per_sec`, `worker`, and `workers` becomes `0`, and per-span
/// `profile` objects are dropped (the header's boolean `profile` flag
/// stays). Two normalized ledgers of the same campaign are bit-identical
/// regardless of pool size or machine speed.
pub fn normalize_jsonl(text: &str) -> Result<String, String> {
    let mut out = String::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut v = json::parse(line).map_err(|e| err_at(i + 1, e))?;
        if let Value::Obj(members) = &mut v {
            members.retain(|(k, val)| !(k == "profile" && matches!(val, Value::Obj(_))));
            for (k, val) in members.iter_mut() {
                if k.ends_with("_ns") || k == "events_per_sec" || k == "worker" || k == "workers" {
                    *val = Value::num(0.0);
                }
            }
        }
        out.push_str(&v.render());
        out.push('\n');
    }
    Ok(out)
}

/// Fleet-health aggregates mined from a ledger — the numbers `report`
/// prints and `bench` records as trajectory context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerStats {
    /// Wall-ns from run start to the last span end.
    pub wall_ns: u64,
    /// Sum of point-span durations (work actually executing).
    pub busy_ns: u64,
    /// Sum of store-flush durations.
    pub flush_ns: u64,
    /// Worker-pool size (header, or the highest observed slot + 1).
    pub workers: usize,
    /// `busy / (workers × wall)` in `[0, 1]`.
    pub utilization: f64,
    /// Median point-span duration.
    pub p50_ns: u64,
    /// 99th-percentile point-span duration.
    pub p99_ns: u64,
    /// Longest point-span duration.
    pub max_ns: u64,
    /// `max / p50` — how much the slowest point lags the median.
    pub straggler_ratio: f64,
    /// Ordinals whose final attempt completed.
    pub ok_points: usize,
    /// Ordinals whose final attempt failed.
    pub failed_points: usize,
    /// Total execution attempts (spans).
    pub attempts: usize,
    /// Spans with `attempt > 0`.
    pub retries: usize,
    /// Simulator events summed over completed attempts.
    pub events: u64,
}

/// Compute [`LedgerStats`] over a parsed ledger.
pub fn stats(ledger: &RunLedger) -> LedgerStats {
    let mut durations: Vec<u64> = ledger
        .points
        .iter()
        .map(|p| p.end_ns.saturating_sub(p.start_ns))
        .collect();
    durations.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if durations.is_empty() {
            return 0;
        }
        let idx = ((durations.len() - 1) as f64 * q).round() as usize;
        durations[idx]
    };
    let busy_ns: u64 = durations.iter().sum();
    let flush_ns: u64 = ledger
        .flushes
        .iter()
        .map(|f| f.end_ns.saturating_sub(f.start_ns))
        .sum();
    let wall_ns = ledger
        .points
        .iter()
        .map(|p| p.end_ns)
        .chain(ledger.waves.iter().map(|w| w.end_ns))
        .chain(ledger.flushes.iter().map(|f| f.end_ns))
        .max()
        .unwrap_or(0);
    let observed = ledger
        .points
        .iter()
        .map(|p| p.worker + 1)
        .max()
        .unwrap_or(0);
    let workers = ledger.header.workers.max(observed).max(1);
    let utilization = if wall_ns == 0 {
        0.0
    } else {
        busy_ns as f64 / (workers as f64 * wall_ns as f64)
    };
    // The *final* span per ordinal decides success; retried-then-ok
    // points count as ok.
    let mut last: std::collections::BTreeMap<usize, bool> = std::collections::BTreeMap::new();
    for p in &ledger.points {
        last.insert(p.ordinal, p.outcome.is_ok());
    }
    let ok_points = last.values().filter(|ok| **ok).count();
    let (p50_ns, p99_ns, max_ns) = (quantile(0.5), quantile(0.99), quantile(1.0));
    LedgerStats {
        wall_ns,
        busy_ns,
        flush_ns,
        workers,
        utilization,
        p50_ns,
        p99_ns,
        max_ns,
        straggler_ratio: if p50_ns == 0 {
            1.0
        } else {
            max_ns as f64 / p50_ns as f64
        },
        ok_points,
        failed_points: last.len() - ok_points,
        attempts: ledger.points.len(),
        retries: ledger.points.iter().filter(|p| p.attempt > 0).count(),
        events: ledger
            .points
            .iter()
            .filter(|p| p.outcome.is_ok())
            .map(|p| p.events)
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> RunLedger {
        let coords = |fault: &str, seed: &str| {
            Coords(vec![
                ("fault".into(), fault.into()),
                ("seed".into(), seed.into()),
            ])
        };
        RunLedger {
            header: LedgerHeader {
                campaign: "faulty".into(),
                scale: Some("tiny".into()),
                points: 2,
                workers: 2,
                chunk: 32,
                shard: Some((1, 3)),
                retries: 1,
                watchdog_budget_s: Some(2.5),
                keep_going: true,
                profile: true,
            },
            points: vec![
                PointSpan {
                    ordinal: 0,
                    coords: coords("clean", "1"),
                    attempt: 0,
                    worker: 0,
                    queued_ns: 10,
                    start_ns: 20,
                    end_ns: 1020,
                    events: 400,
                    events_per_sec: 4.0e8,
                    outcome: SpanOutcome::Ok,
                    profile: Some(ProfileFractions {
                        deliver_frac: 0.5,
                        timer_frac: 0.25,
                        batch_frac: 0.25,
                        pool_hit_rate: 0.9,
                        wheel_near_avg: 3.5,
                        wheel_overflow_avg: 0.0,
                        events_per_wall_sec: 4.0e8,
                    }),
                },
                PointSpan {
                    ordinal: 1,
                    coords: coords("boom", "1"),
                    attempt: 0,
                    worker: 1,
                    queued_ns: 10,
                    start_ns: 30,
                    end_ns: 230,
                    events: 0,
                    events_per_sec: 0.0,
                    outcome: SpanOutcome::Panic("injected fault".into()),
                    profile: None,
                },
                PointSpan {
                    ordinal: 1,
                    coords: coords("boom", "1"),
                    attempt: 1,
                    worker: 1,
                    queued_ns: 10,
                    start_ns: 240,
                    end_ns: 440,
                    events: 0,
                    events_per_sec: 0.0,
                    outcome: SpanOutcome::Panic("injected fault".into()),
                    profile: None,
                },
            ],
            waves: vec![WaveSpan {
                index: 0,
                start_ns: 10,
                end_ns: 1100,
                points: 2,
            }],
            flushes: vec![FlushSpan {
                wave: 0,
                start_ns: 1100,
                end_ns: 1200,
            }],
        }
    }

    #[test]
    fn ledger_round_trips_through_jsonl() {
        let ledger = sample_ledger();
        let text = ledger.to_jsonl();
        let back = RunLedger::from_jsonl(&text).expect("parse");
        assert_eq!(back, ledger);
        assert_eq!(back.to_jsonl(), text, "reserialization diverged");
    }

    #[test]
    fn normalization_zeroes_wall_fields_and_drops_profiles() {
        let text = sample_ledger().to_jsonl();
        let norm = normalize_jsonl(&text).expect("normalize");
        assert!(norm.contains("\"start_ns\":0"));
        assert!(!norm.contains("deliver_frac"), "profile obj must drop");
        // the header's boolean profile flag survives
        assert!(norm.lines().next().unwrap().contains("\"profile\":true"));
        assert!(norm.contains("\"events\":400"), "structure must survive");
        assert!(norm.contains("\"events_per_sec\":0"));
        // normalization is idempotent
        assert_eq!(normalize_jsonl(&norm).expect("renormalize"), norm);
    }

    #[test]
    fn stats_attribute_attempts_outcomes_and_utilization() {
        let s = stats(&sample_ledger());
        assert_eq!(s.attempts, 3);
        assert_eq!(s.retries, 1);
        assert_eq!(s.ok_points, 1);
        assert_eq!(s.failed_points, 1);
        assert_eq!(s.events, 400);
        assert_eq!(s.max_ns, 1000);
        assert_eq!(s.flush_ns, 100);
        assert_eq!(s.wall_ns, 1200);
        assert!(s.utilization > 0.0 && s.utilization < 1.0);
        assert!(s.straggler_ratio >= 1.0);
    }

    #[test]
    fn malformed_ledgers_fail_with_a_line_number() {
        let err = RunLedger::from_jsonl("{\"schema\":\"nope\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let text = sample_ledger().to_jsonl();
        let broken = text.replace("\"outcome\":\"ok\"", "\"outcome\":\"maybe\"");
        let err = RunLedger::from_jsonl(&broken).unwrap_err();
        assert!(err.contains("unknown outcome"), "{err}");
    }
}
