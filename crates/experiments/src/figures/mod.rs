//! One module per table/figure of the paper's evaluation. Every module
//! exposes `run(fast) -> String`: the rendered rows/series the paper
//! reports, at full scale (`fast = false`, what EXPERIMENTS.md records) or
//! at a reduced scale for benches and CI (`fast = true`).

pub mod ablations;
pub mod coexistence;
pub mod explicit_figs;
pub mod matrix;
pub mod motivation;
pub mod pareto;
pub mod stability_fig;
pub mod wifi_figs;

/// Index of every generator: (id, description, runner).
pub fn all() -> Vec<(&'static str, &'static str, fn(bool) -> String)> {
    vec![
        ("table1", "§1 normalized tput/delay summary", pareto::table1 as fn(bool) -> String),
        ("fig1", "motivation time series (Cubic/Verus/Cubic+CoDel/ABC)", motivation::fig1),
        ("fig2", "dequeue- vs enqueue-rate feedback", ablations::fig2),
        ("fig3", "fairness with/without additive increase", ablations::fig3),
        ("fig4", "Wi-Fi inter-ACK time vs batch size", wifi_figs::fig4),
        ("fig5", "Wi-Fi link-rate prediction accuracy", wifi_figs::fig5),
        ("fig6", "coexistence with a non-ABC bottleneck (dual windows)", coexistence::fig6),
        ("fig7", "coexistence with non-ABC flows (dual queue)", coexistence::fig7),
        ("fig8", "utilization vs 95p delay Pareto (down/up/two-hop)", pareto::fig8),
        ("fig9", "utilization + 95p delay across 8 traces", pareto::fig9),
        ("fig10", "Wi-Fi throughput/delay, 1 and 2 users", wifi_figs::fig10),
        ("fig11", "non-ABC bottleneck with cross traffic", coexistence::fig11),
        ("fig12", "max-min vs Zombie-List weights under short flows", coexistence::fig12),
        ("fig13", "application-limited ABC flows", coexistence::fig13),
        ("fig14", "Wi-Fi Brownian-motion MCS", wifi_figs::fig14),
        ("fig15", "mean per-packet delay across traces", pareto::fig15),
        ("fig16", "ABC vs explicit schemes (XCP/XCPw/RCP/VCP)", explicit_figs::fig16),
        ("fig17", "square-wave link time series (ABC/RCP/XCPw)", explicit_figs::fig17),
        ("fig18", "RTT sensitivity sweep", pareto::fig18),
        ("pk_abc", "§6.6 perfect-future-knowledge ABC", ablations::pk_abc),
        ("stability", "Theorem 3.1 δ/τ stability sweep", stability_fig::stability),
        ("jain", "§6.5 Jain index, 2..32 ABC flows", ablations::jain),
        ("marking", "deterministic vs probabilistic marking ablation", ablations::marking),
    ]
}
