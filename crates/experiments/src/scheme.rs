//! The scheme registry: every congestion-control protocol in the paper's
//! evaluation, with its endpoint controller and (for in-network schemes)
//! its bottleneck qdisc.

use abc_core::router::{AbcQdisc, AbcRouterConfig, FeedbackBasis};
use abc_core::sender::AbcSender;
use aqm::{Codel, CodelConfig, Pie, PieConfig};
use baselines::{Bbr, Copa, Cubic, NewReno, PccVivace, Sprout, Vegas, Verus};
use explicit::{RcpQdisc, RcpSender, VcpQdisc, VcpSender, XcpConfig, XcpQdisc, XcpSender};
use netsim::flow::CongestionControl;
use netsim::queue::{DropTail, Qdisc};
use netsim::time::SimDuration;

/// Every scheme in the evaluation. `AbcDt` parameterizes the delay
/// threshold in ms (the Fig. 10 ABC_20/60/100 variants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// ABC, as published.
    Abc,
    /// ABC with a non-default delay threshold dt (ms).
    AbcDt(u64),
    /// ABC without the additive-increase term (Fig. 3 ablation).
    AbcNoAi,
    /// ABC computing f(t) from the enqueue rate (Fig. 2 ablation).
    AbcEnqueue,
    /// ABC-Cubic, the incremental-deployment endpoint (§4.1): ABC on
    /// paths that brake, per-path fallback to Cubic where nothing does.
    AbcCubic,
    /// TCP Cubic over droptail.
    Cubic,
    /// Cubic with a CoDel bottleneck.
    CubicCodel,
    /// Cubic with a PIE bottleneck.
    CubicPie,
    /// TCP NewReno.
    NewReno,
    /// TCP Vegas.
    Vegas,
    /// BBR v1.
    Bbr,
    /// Copa (NSDI '18).
    Copa,
    /// PCC Vivace-latency.
    Pcc,
    /// Sprout's packet-train forecaster.
    Sprout,
    /// Verus' delay-profile learner.
    Verus,
    /// XCP (multi-bit explicit window feedback).
    Xcp,
    /// XCPw, the paper's wireless-tuned XCP variant.
    Xcpw,
    /// RCP (router-advertised rate).
    Rcp,
    /// VCP (2-bit load factor).
    Vcp,
}

/// The scheme lineup of Fig. 8/9 (end-to-end + AQM + XCP variants).
pub const CELLULAR_LINEUP: [Scheme; 12] = [
    Scheme::Abc,
    Scheme::Xcp,
    Scheme::Xcpw,
    Scheme::CubicCodel,
    Scheme::CubicPie,
    Scheme::Copa,
    Scheme::Sprout,
    Scheme::Vegas,
    Scheme::Verus,
    Scheme::Bbr,
    Scheme::Pcc,
    Scheme::Cubic,
];

/// The explicit-scheme lineup of Fig. 16.
pub const EXPLICIT_LINEUP: [Scheme; 5] = [
    Scheme::Abc,
    Scheme::Xcp,
    Scheme::Xcpw,
    Scheme::Vcp,
    Scheme::Rcp,
];

/// The Wi-Fi lineup of Fig. 10 (Sprout/Verus excluded: cellular-specific).
pub const WIFI_LINEUP: [Scheme; 9] = [
    Scheme::AbcDt(20),
    Scheme::AbcDt(60),
    Scheme::AbcDt(100),
    Scheme::CubicCodel,
    Scheme::Copa,
    Scheme::Vegas,
    Scheme::Bbr,
    Scheme::Pcc,
    Scheme::Cubic,
];

impl Scheme {
    /// The display name (as figures, stores, and campaign files write
    /// it): `ABC`, `Cubic+Codel`, `ABC_50`, …
    pub fn name(&self) -> String {
        match self {
            Scheme::Abc => "ABC".into(),
            Scheme::AbcDt(ms) => format!("ABC_{ms}"),
            Scheme::AbcNoAi => "ABC-noAI".into(),
            Scheme::AbcEnqueue => "ABC-enq".into(),
            Scheme::AbcCubic => "ABC-Cubic".into(),
            Scheme::Cubic => "Cubic".into(),
            Scheme::CubicCodel => "Cubic+Codel".into(),
            Scheme::CubicPie => "Cubic+PIE".into(),
            Scheme::NewReno => "NewReno".into(),
            Scheme::Vegas => "Vegas".into(),
            Scheme::Bbr => "BBR".into(),
            Scheme::Copa => "Copa".into(),
            Scheme::Pcc => "PCC".into(),
            Scheme::Sprout => "Sprout".into(),
            Scheme::Verus => "Verus".into(),
            Scheme::Xcp => "XCP".into(),
            Scheme::Xcpw => "XCPw".into(),
            Scheme::Rcp => "RCP".into(),
            Scheme::Vcp => "VCP".into(),
        }
    }

    /// Parse a scheme from its display name or a common alias,
    /// case-insensitively (`-`, `_`, and `+` are interchangeable):
    /// `ABC`, `cubic-codel`, `Cubic+PIE`, `reno`, `ABC_50` / `abc-dt50`
    /// (non-default delay threshold), … The inverse of [`Scheme::name`];
    /// `abcsim --scheme` and campaign files both resolve through here,
    /// so a new variant becomes nameable everywhere at once.
    pub fn from_name(s: &str) -> Option<Scheme> {
        let norm = s.to_ascii_lowercase().replace(['-', '_'], "+");
        Some(match norm.as_str() {
            "abc" => Scheme::Abc,
            "abc+noai" => Scheme::AbcNoAi,
            "abc+enq" | "abc+enqueue" => Scheme::AbcEnqueue,
            "abc+cubic" | "abccubic" => Scheme::AbcCubic,
            "cubic" => Scheme::Cubic,
            "cubic+codel" | "codel" => Scheme::CubicCodel,
            "cubic+pie" | "pie" => Scheme::CubicPie,
            "newreno" | "reno" => Scheme::NewReno,
            "vegas" => Scheme::Vegas,
            "bbr" => Scheme::Bbr,
            "copa" => Scheme::Copa,
            "pcc" | "pcc+vivace" | "vivace" => Scheme::Pcc,
            "sprout" => Scheme::Sprout,
            "verus" => Scheme::Verus,
            "xcp" => Scheme::Xcp,
            "xcpw" | "xcp+w" => Scheme::Xcpw,
            "rcp" => Scheme::Rcp,
            "vcp" => Scheme::Vcp,
            _ => {
                // "abc-dt50" (abcsim's historical form) or "ABC_50" (the
                // display name) — both normalize onto an "abc+…" prefix.
                let ms = norm
                    .strip_prefix("abc+dt")
                    .or_else(|| norm.strip_prefix("abc+"))?;
                return ms.parse().ok().map(Scheme::AbcDt);
            }
        })
    }

    /// Is this an ABC variant (router-feedback-driven sender)?
    pub fn is_abc(&self) -> bool {
        matches!(
            self,
            Scheme::Abc
                | Scheme::AbcDt(_)
                | Scheme::AbcNoAi
                | Scheme::AbcEnqueue
                | Scheme::AbcCubic
        )
    }

    /// Build the endpoint congestion controller.
    pub fn make_cc(&self) -> Box<dyn CongestionControl> {
        match self {
            Scheme::Abc | Scheme::AbcDt(_) | Scheme::AbcEnqueue => Box::new(AbcSender::new()),
            Scheme::AbcNoAi => Box::new(AbcSender::without_additive_increase()),
            Scheme::AbcCubic => Box::new(abc_core::AbcCubic::new()),
            Scheme::Cubic | Scheme::CubicCodel | Scheme::CubicPie => Box::new(Cubic::new()),
            Scheme::NewReno => Box::new(NewReno::new()),
            Scheme::Vegas => Box::new(Vegas::new()),
            Scheme::Bbr => Box::new(Bbr::new()),
            Scheme::Copa => Box::new(Copa::new()),
            Scheme::Pcc => Box::new(PccVivace::new()),
            Scheme::Sprout => Box::new(Sprout::new()),
            Scheme::Verus => Box::new(Verus::new()),
            Scheme::Xcp | Scheme::Xcpw => Box::new(XcpSender::new()),
            Scheme::Rcp => Box::new(RcpSender::new()),
            Scheme::Vcp => Box::new(VcpSender::new()),
        }
    }

    /// Build the bottleneck qdisc this scheme runs over.
    pub fn make_qdisc(&self, buffer_pkts: usize) -> Box<dyn Qdisc> {
        match self {
            Scheme::Abc | Scheme::AbcNoAi | Scheme::AbcCubic => {
                Box::new(AbcQdisc::new(AbcRouterConfig {
                    buffer_pkts,
                    ..Default::default()
                }))
            }
            Scheme::AbcDt(ms) => Box::new(AbcQdisc::new(AbcRouterConfig {
                buffer_pkts,
                dt: SimDuration::from_millis(*ms),
                ..Default::default()
            })),
            Scheme::AbcEnqueue => Box::new(AbcQdisc::new(AbcRouterConfig {
                buffer_pkts,
                basis: FeedbackBasis::Enqueue,
                ..Default::default()
            })),
            Scheme::CubicCodel => Box::new(Codel::new(CodelConfig {
                buffer_pkts,
                ..Default::default()
            })),
            Scheme::CubicPie => Box::new(Pie::new(PieConfig {
                buffer_pkts,
                ..Default::default()
            })),
            Scheme::Xcp => Box::new(XcpQdisc::new(XcpConfig {
                buffer_pkts,
                ..Default::default()
            })),
            Scheme::Xcpw => Box::new(XcpQdisc::new(XcpConfig {
                buffer_pkts,
                ..XcpConfig::wireless()
            })),
            Scheme::Rcp => Box::new(RcpQdisc::new(explicit::RcpConfig {
                buffer_pkts,
                ..Default::default()
            })),
            Scheme::Vcp => Box::new(VcpQdisc::new(explicit::VcpConfig {
                buffer_pkts,
                ..Default::default()
            })),
            _ => Box::new(DropTail::new(buffer_pkts)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheme_builds() {
        let all = [
            Scheme::Abc,
            Scheme::AbcDt(60),
            Scheme::AbcNoAi,
            Scheme::AbcEnqueue,
            Scheme::AbcCubic,
            Scheme::Cubic,
            Scheme::CubicCodel,
            Scheme::CubicPie,
            Scheme::NewReno,
            Scheme::Vegas,
            Scheme::Bbr,
            Scheme::Copa,
            Scheme::Pcc,
            Scheme::Sprout,
            Scheme::Verus,
            Scheme::Xcp,
            Scheme::Xcpw,
            Scheme::Rcp,
            Scheme::Vcp,
        ];
        for s in all {
            let cc = s.make_cc();
            assert!(!cc.name().is_empty());
            let q = s.make_qdisc(100);
            assert_eq!(q.len_pkts(), 0);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn abc_variants_flagged() {
        assert!(Scheme::Abc.is_abc());
        assert!(Scheme::AbcDt(20).is_abc());
        assert!(Scheme::AbcCubic.is_abc());
        assert!(!Scheme::Cubic.is_abc());
        assert!(!Scheme::Xcp.is_abc());
    }
}
