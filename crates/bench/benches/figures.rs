//! One bench per table/figure of the paper: each measures the scenario
//! kernel that regenerates that figure, at a short duration so the suite
//! stays tractable. The full-scale regeneration (the numbers EXPERIMENTS.md
//! records) is `cargo run --release -p experiments --bin figgen all`.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::topos::{CoexistScenario, CrossTraffic, MixedPathScenario, TwoHopScenario};
use experiments::wifi::{McsSpec, WifiScenario};
use experiments::{CellScenario, LinkSpec, Scheme};
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};

const KERNEL_SECS: u64 = 5;

fn cell_kernel(scheme: Scheme) -> f64 {
    let trace = cellular::builtin("Verizon1").unwrap();
    let mut sc = CellScenario::new(scheme, LinkSpec::Trace(trace));
    sc.duration = SimDuration::from_secs(KERNEL_SECS);
    sc.warmup = SimDuration::from_secs(1);
    sc.run().utilization
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Table 1 / Fig 9 / Fig 15: the scheme×trace matrix kernel
    g.bench_function("table1_fig9_fig15_kernel", |b| {
        b.iter(|| {
            cell_kernel(Scheme::Abc) + cell_kernel(Scheme::Cubic) + cell_kernel(Scheme::CubicCodel)
        })
    });

    // Fig 1: motivation panels
    g.bench_function("fig1_kernel", |b| b.iter(|| cell_kernel(Scheme::Verus)));

    // Fig 2: enqueue-basis ablation
    g.bench_function("fig2_kernel", |b| {
        b.iter(|| cell_kernel(Scheme::AbcEnqueue))
    });

    // Fig 3 / jain: multi-flow fairness
    g.bench_function("fig3_jain_kernel", |b| {
        b.iter(|| {
            let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(24.0)));
            sc.n_flows = 5;
            sc.duration = SimDuration::from_secs(KERNEL_SECS);
            sc.warmup = SimDuration::from_secs(1);
            sc.run().jain
        })
    });

    // Fig 4 / Fig 5 / Fig 10 / Fig 14: Wi-Fi kernels
    g.bench_function("fig4_fig5_estimator_kernel", |b| {
        b.iter(|| experiments::estimator_accuracy(1, 8.0, SimDuration::from_secs(KERNEL_SECS)).1)
    });
    g.bench_function("fig10_fig14_wifi_kernel", |b| {
        b.iter(|| {
            let mut sc = WifiScenario::new(
                Scheme::AbcDt(60),
                1,
                McsSpec::Alternating(1, 7, SimDuration::from_secs(2)),
            );
            sc.duration = SimDuration::from_secs(KERNEL_SECS);
            sc.warmup = SimDuration::from_secs(1);
            sc.run().total_tput_mbps
        })
    });

    // Fig 6 / Fig 11: mixed wireless+wired path
    g.bench_function("fig6_fig11_mixed_path_kernel", |b| {
        b.iter(|| {
            MixedPathScenario {
                wireless: LinkSpec::Steps(vec![
                    (SimTime::ZERO, Rate::from_mbps(16.0)),
                    (
                        SimTime::ZERO + SimDuration::from_secs(2),
                        Rate::from_mbps(6.0),
                    ),
                ]),
                wired_rate: Rate::from_mbps(12.0),
                rtt: SimDuration::from_millis(100),
                buffer_pkts: 250,
                cross: CrossTraffic::OnOffCubic {
                    on: SimDuration::from_secs(2),
                    off: SimDuration::from_secs(1),
                },
                duration: SimDuration::from_secs(KERNEL_SECS),
            }
            .run()
            .report
            .total_tput_mbps
        })
    });

    // Fig 7 / Fig 12: dual-queue coexistence
    g.bench_function("fig7_fig12_coexist_kernel", |b| {
        b.iter(|| {
            CoexistScenario {
                link_rate: Rate::from_mbps(48.0),
                duration: SimDuration::from_secs(KERNEL_SECS),
                warmup: SimDuration::from_secs(1),
                short_flow_load: 0.125,
                ..Default::default()
            }
            .run()
            .abc_tputs
            .len()
        })
    });

    // Fig 8: Pareto panels incl. the two-hop path
    g.bench_function("fig8_twohop_kernel", |b| {
        b.iter(|| {
            let up = cellular::builtin("Verizon2").unwrap();
            let down = cellular::builtin("Verizon1").unwrap();
            let mut sc =
                TwoHopScenario::new(Scheme::Abc, LinkSpec::Trace(up), LinkSpec::Trace(down));
            sc.duration = SimDuration::from_secs(KERNEL_SECS);
            sc.warmup = SimDuration::from_secs(1);
            sc.run().utilization
        })
    });

    // Fig 13: application-limited flows
    g.bench_function("fig13_app_limited_kernel", |b| {
        b.iter(|| {
            let trace = cellular::builtin("Verizon1").unwrap();
            let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Trace(trace));
            sc.n_flows = 20;
            sc.app = netsim::flow::TrafficSource::RateLimited {
                rate: Rate::from_kbps(50.0),
                burst_bytes: 4500.0,
            };
            sc.duration = SimDuration::from_secs(KERNEL_SECS);
            sc.warmup = SimDuration::from_secs(1);
            sc.run().total_tput_mbps
        })
    });

    // Fig 16 / Fig 17: explicit schemes
    g.bench_function("fig16_explicit_kernel", |b| {
        b.iter(|| cell_kernel(Scheme::Xcpw))
    });
    g.bench_function("fig17_square_wave_kernel", |b| {
        b.iter(|| {
            let mut sc = CellScenario::new(
                Scheme::Rcp,
                LinkSpec::Square {
                    a: Rate::from_mbps(12.0),
                    b: Rate::from_mbps(24.0),
                    half_period: SimDuration::from_millis(500),
                },
            );
            sc.duration = SimDuration::from_secs(KERNEL_SECS);
            sc.warmup = SimDuration::from_secs(1);
            sc.run().utilization
        })
    });

    // Fig 18: RTT sweep kernel
    g.bench_function("fig18_rtt_kernel", |b| {
        b.iter(|| {
            let trace = cellular::builtin("Verizon1").unwrap();
            let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Trace(trace));
            sc.rtt = SimDuration::from_millis(20);
            sc.duration = SimDuration::from_secs(KERNEL_SECS);
            sc.warmup = SimDuration::from_secs(1);
            sc.run().utilization
        })
    });

    // PK-ABC oracle
    g.bench_function("pk_abc_kernel", |b| {
        b.iter(|| {
            let trace = cellular::builtin("Verizon2").unwrap();
            let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Trace(trace));
            sc.oracle_lookahead = Some(SimDuration::from_millis(100));
            sc.duration = SimDuration::from_secs(KERNEL_SECS);
            sc.warmup = SimDuration::from_secs(1);
            sc.run().qdelay_ms.p95
        })
    });

    // stability fluid model
    g.bench_function("stability_fluid_kernel", |b| {
        b.iter(|| {
            abc_core::stability::integrate_fluid(
                0.05,
                SimDuration::from_millis(133),
                SimDuration::from_millis(20),
                SimDuration::from_millis(100),
                0.4,
                20.0,
                1e-3,
            )
            .residual
        })
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
