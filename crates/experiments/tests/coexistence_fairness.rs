//! Fairness invariant for incremental deployment: an ABC-Cubic flow
//! sharing a single *non-ABC* (droptail) bottleneck with a plain Cubic
//! flow must compete as Cubic — it never sees a brake echo, so its legacy
//! window governs and the pair should split the link about evenly.
//!
//! Pinned as a Jain-index floor across a seeds × RTTs sweep rather than a
//! point value: the sweep is fully seeded, so the exact indices are
//! deterministic, but the *invariant* is the floor — a regression that
//! lets the accelerate-stamped hybrid starve (or be starved by) Cubic
//! drops the index well below it.

use experiments::engine::{FlowSchedule, FlowSpec, QdiscSpec, ScenarioEngine, ScenarioSpec};
use experiments::scenario::LinkSpec;
use experiments::Scheme;
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};

/// Minimum acceptable Jain fairness index for the two-flow share. Two
/// identical Cubic flows on one droptail queue sit well above this; the
/// floor leaves room for loss-synchronization phase effects across seeds
/// and RTTs without tolerating actual starvation (two flows at 80/20
/// score 0.88, at 90/10 they score 0.74).
const JAIN_FLOOR: f64 = 0.9;

#[test]
fn abc_cubic_shares_a_droptail_bottleneck_fairly_with_cubic() {
    let engine = ScenarioEngine::with_threads(1);
    let mut worst = (1.0f64, 0u64, 0u64);
    for seed in [1u64, 2, 3] {
        for rtt_ms in [20u64, 50, 100] {
            let mut spec =
                ScenarioSpec::single(Scheme::AbcCubic, LinkSpec::Constant(Rate::from_mbps(12.0)))
                    .qdisc(QdiscSpec::DropTail)
                    .rtt(SimDuration::from_millis(rtt_ms))
                    .duration(SimDuration::from_secs(20))
                    .warmup(SimDuration::from_secs(2))
                    .seed(seed);
            spec.flows = FlowSchedule::Explicit(vec![
                FlowSpec::new("abc-cubic"),
                FlowSpec::new("cubic")
                    .scheme(Scheme::Cubic)
                    .start_at(SimTime::ZERO + SimDuration::from_millis(10)),
            ]);
            let report = engine.run(&spec);
            assert_eq!(
                report.flow_tputs_mbps.len(),
                2,
                "expected both flows to run"
            );
            assert!(
                report.jain >= JAIN_FLOOR,
                "seed {seed}, rtt {rtt_ms} ms: Jain index {:.3} below {JAIN_FLOOR} \
                 (flows: {:?} Mbit/s)",
                report.jain,
                report.flow_tputs_mbps
            );
            if report.jain < worst.0 {
                worst = (report.jain, seed, rtt_ms);
            }
        }
    }
    // The sweep is deterministic: record the worst cell in the assertion
    // trail so a tolerance change is a conscious edit, not drift.
    assert!(
        worst.0 >= JAIN_FLOOR,
        "worst cell seed {} rtt {} ms scored {:.3}",
        worst.1,
        worst.2,
        worst.0
    );
}
